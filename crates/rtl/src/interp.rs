//! The executable-netlist interpreter.
//!
//! [`interpret`] runs a [`Netlist`] clock edge by clock edge: the cycle
//! counter advances, per-stage enables fire at the ILP start cycles, the
//! window-load paths shift the SRA register arrays and read the rotating
//! line-buffer SRAMs, the stage compute modules evaluate their kernels at
//! the declared accumulator width, and the output registers truncate to
//! the pixel width — exactly the hardware the netlist describes.
//!
//! This closes the verification loop the repository previously lacked
//! (no synthesis or Verilog simulation tool exists in this environment):
//! the structure the Verilog is printed from is itself executed and
//! cross-checked bit-exactly against the golden executor
//! (`imagen_sim::execute`) and the cycle-level simulator
//! (`imagen_sim::simulate`). At [`BitWidths::wide`](crate::BitWidths::wide)
//! the datapath arithmetic coincides with the software model's `i64`
//! semantics, so equality is exact on full-range inputs; at the default
//! 16/32-bit widths the interpreter reproduces the real truncating
//! hardware, which matches the software model whenever values stay in
//! range (the differential suite checks both regimes).
//!
//! Timing note: values are sampled *after* each clock edge, so output
//! pixel `k` of a stage with start cycle `s` is observed after edge
//! `s + k` — the cycle-level simulator's convention.

use crate::activity::ActivityTrace;
use crate::netlist::{BufferGate, ModuleKind, Netlist};
use imagen_ir::Expr;
use imagen_sim::Image;
use std::fmt;

/// Interpretation failure (structural, before any cycles run).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InterpError {
    /// The number of provided input images does not match the netlist's
    /// input streams.
    InputCount {
        /// Streams expected.
        expected: usize,
        /// Images provided.
        provided: usize,
    },
    /// An input image does not match the netlist geometry.
    GeometryMismatch,
    /// A stage is read through a window but owns no line buffer in the
    /// netlist, so the load path has nothing to read from.
    MissingBuffer {
        /// The buffer-less producer stage.
        stage: usize,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::InputCount { expected, provided } => write!(
                f,
                "netlist has {expected} input stream(s) but {provided} image(s) were provided"
            ),
            InterpError::GeometryMismatch => {
                write!(
                    f,
                    "input image dimensions do not match the netlist geometry"
                )
            }
            InterpError::MissingBuffer { stage } => {
                write!(f, "stage {stage} is windowed but owns no line buffer")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// Result of interpreting a netlist over one frame.
#[derive(Clone, Debug)]
pub struct InterpReport {
    /// Clock edges executed.
    pub cycles: u64,
    /// Cycle after the last output pixel (end-to-end frame latency).
    pub latency: u64,
    /// The frames streamed out, one per output stage: `(stage index,
    /// image)`.
    pub output_images: Vec<(usize, Image)>,
    /// SRAM words read through the window-load paths.
    pub sram_reads: u64,
    /// SRAM words written through the line-buffer write ports.
    pub sram_writes: u64,
    /// Read-port cycles suppressed by the netlist's clock-gating plan,
    /// summed over all line buffers (0 for ungated netlists). This is
    /// *measured* by the interpreter cycle by cycle, not derived from
    /// the plan, so the energy saving the gating pass claims is backed
    /// by execution.
    pub gated_off_cycles: u64,
}

/// Sign-truncates `v` to `bits` bits (identity for `bits >= 64`).
///
/// Public because the symbolic certifier (`imagen-analysis`) proves its
/// obligations against *this* function and [`eval_acc`] — the pinned
/// semantics of the generated datapath.
pub fn trunc(v: i64, bits: u32) -> i64 {
    if bits >= 64 {
        v
    } else {
        let sh = 64 - bits;
        (v << sh) >> sh
    }
}

/// Evaluates a kernel at accumulator width `acc`: every operation result
/// is truncated to `acc` bits, mirroring the fixed-width datapath of the
/// generated hardware. At `acc = 64` this coincides exactly with
/// [`Expr::eval`]'s wrapping-`i64` semantics.
pub fn eval_acc(e: &Expr, acc: u32, fetch: &mut impl FnMut(usize, i32, i32) -> i64) -> i64 {
    use imagen_ir::BinOp;
    let v = match e {
        Expr::Const(c) => *c,
        Expr::Tap { slot, dx, dy } => fetch(*slot, *dx, *dy),
        Expr::Neg(a) => eval_acc(a, acc, fetch).wrapping_neg(),
        Expr::Abs(a) => eval_acc(a, acc, fetch).wrapping_abs(),
        Expr::Bin(op, a, b) => {
            let a = eval_acc(a, acc, fetch);
            let b = eval_acc(b, acc, fetch);
            match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        0
                    } else {
                        a.wrapping_div(b)
                    }
                }
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
                // Verilog `<<<`/`>>>` semantics, identical to
                // `imagen_ir::Expr::eval`: out-of-range amounts shift
                // everything out (pinned by tests/shift_semantics.rs).
                BinOp::Shl => {
                    if (0..64).contains(&b) {
                        a.wrapping_shl(b as u32)
                    } else {
                        0
                    }
                }
                BinOp::Shr => {
                    let amt = if (0..64).contains(&b) { b as u32 } else { 63 };
                    a.wrapping_shr(amt)
                }
            }
        }
        Expr::Cmp(op, a, b) => {
            let a = eval_acc(a, acc, fetch);
            let b = eval_acc(b, acc, fetch);
            i64::from(op.apply(a, b))
        }
        Expr::Select {
            cond,
            then,
            otherwise,
        } => {
            if eval_acc(cond, acc, fetch) != 0 {
                eval_acc(then, acc, fetch)
            } else {
                eval_acc(otherwise, acc, fetch)
            }
        }
        Expr::Clamp { value, lo, hi } => {
            let v = eval_acc(value, acc, fetch);
            let lo = eval_acc(lo, acc, fetch);
            let hi = eval_acc(hi, acc, fetch);
            if lo > hi {
                lo
            } else {
                v.clamp(lo, hi)
            }
        }
    };
    trunc(v, acc)
}

/// Rotating line-buffer storage for one producer stage.
struct BufState {
    rows: u32,
    data: Vec<i64>,
}

/// One shift-register array (window registers of one edge).
struct SraState {
    height: u32,
    width: u32,
    lag: u32,
    data: Vec<i64>,
}

/// Executes `net` on `inputs` (one image per input stream, in stream
/// order), returning the streamed output frames and netlist-level memory
/// access totals.
///
/// Since the program compiler landed this routes through
/// [`EvalProgram`](crate::EvalProgram): the netlist is lowered once into
/// a flat evaluation program, which then streams the frame. Results are
/// bit-identical to the reference graph-walking path
/// ([`interpret_legacy`]), pinned by the program differential suite. To
/// amortize compilation over many frames of the same netlist, hold an
/// [`EvalProgram`](crate::EvalProgram) directly.
///
/// # Errors
///
/// [`InterpError`] for structural problems; the interpretation itself
/// cannot fail (the netlist is a closed system once inputs are bound).
pub fn interpret(net: &Netlist, inputs: &[Image]) -> Result<InterpReport, InterpError> {
    crate::program::EvalProgram::compile(net)?.run(inputs)
}

/// Like [`interpret`], but additionally collects an [`ActivityTrace`]:
/// per-SRAM-bank access counts (merged like the cycle simulator's),
/// read-port enable duty, register-array shift/toggle totals and stage
/// enable duty. The returned [`InterpReport`] is identical to the
/// untraced one — tracing observes the execution, it never changes it
/// (pinned by test). Routes through the compiled program, like
/// [`interpret`].
///
/// # Errors
///
/// See [`interpret`].
pub fn interpret_with_trace(
    net: &Netlist,
    inputs: &[Image],
) -> Result<(InterpReport, ActivityTrace), InterpError> {
    crate::program::EvalProgram::compile(net)?.run_with_trace(inputs)
}

/// The reference graph-walking interpreter — executes the netlist by
/// re-traversing its structure every cycle, with no compiled program in
/// between.
///
/// This is the semantic baseline the program path is differentially
/// pinned against (`crates/rtl/tests/program_differential.rs`); prefer
/// [`interpret`] everywhere else — it is an order of magnitude faster
/// and bit-identical.
///
/// # Errors
///
/// See [`interpret`].
pub fn interpret_legacy(net: &Netlist, inputs: &[Image]) -> Result<InterpReport, InterpError> {
    run(net, inputs, None)
}

/// The reference traced interpreter — [`interpret_with_trace`]'s
/// graph-walking baseline, see [`interpret_legacy`].
///
/// # Errors
///
/// See [`interpret`].
pub fn interpret_with_trace_legacy(
    net: &Netlist,
    inputs: &[Image],
) -> Result<(InterpReport, ActivityTrace), InterpError> {
    let mut trace = ActivityTrace::for_netlist(net);
    let report = run(net, inputs, Some(&mut trace))?;
    Ok((report, trace))
}

/// Per-cycle activity scratch, one slot per netlist buffer.
///
/// Historically `cycle_reads` was deduplicated with a linear scan per
/// read and the per-block counters were an associative list scanned per
/// bump — O(accesses²) per cycle. Reads are now collected unchecked and
/// merged with one sort+dedup at end of cycle (the unique set is
/// order-independent, so the result is identical), and the counters are
/// dense per-block arrays with a touched list for O(1) bump and reset.
struct TraceScratch {
    /// Same-address merge candidates for the current cycle:
    /// `(block, row, x)` — the cycle simulator's merge key, deduplicated
    /// at end of cycle.
    cycle_reads: Vec<Vec<(usize, i64, i64)>>,
    /// Dense per-block access counters for the current cycle.
    cycle_counts: Vec<Vec<u32>>,
    /// Blocks touched this cycle (reset list for `cycle_counts`).
    touched: Vec<Vec<usize>>,
    /// Whether any consumer loaded from the buffer this cycle.
    consumed: Vec<bool>,
    /// Previous output-register value per stage (toggle counting).
    prev_out: Vec<i64>,
}

fn bump(counts: &mut [u32], touched: &mut Vec<usize>, block: usize) {
    if counts[block] == 0 {
        touched.push(block);
    }
    counts[block] += 1;
}

/// Toggled bits between two register values at `bits` width.
fn toggles(old: i64, new: i64, bits: u32) -> u64 {
    let mask = if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    (((old ^ new) as u64) & mask).count_ones() as u64
}

fn run(
    net: &Netlist,
    inputs: &[Image],
    mut trace: Option<&mut ActivityTrace>,
) -> Result<InterpReport, InterpError> {
    let geom = net.geometry;
    let (w, h) = (geom.width as i64, geom.height as i64);
    let frame = net.frame as i64;
    let pixel = net.widths.pixel_bits;
    let acc = net.widths.acc_bits;

    let streams = net.input_streams();
    if streams.len() != inputs.len() {
        return Err(InterpError::InputCount {
            expected: streams.len(),
            provided: inputs.len(),
        });
    }
    if inputs
        .iter()
        .any(|i| i.width() != geom.width || i.height() != geom.height)
    {
        return Err(InterpError::GeometryMismatch);
    }

    // Per-stage cumulative rate scales (1,1 for rate-1 stages).
    let scales: Vec<(i64, i64)> = net
        .stages
        .iter()
        .map(|s| (s.scale_x as i64, s.scale_y as i64))
        .collect();

    // Per-stage rotating buffers (from the netlist's line-buffer roster).
    // A multirate producer's buffer holds its own grid: w / scale_x words
    // per row.
    let mut buffers: Vec<Option<BufState>> = (0..net.stages.len()).map(|_| None).collect();
    for buf in &net.buffers {
        let (sx, _) = scales[buf.stage];
        buffers[buf.stage] = Some(BufState {
            rows: buf.storage_rows,
            data: vec![0; buf.storage_rows as usize * (w / sx) as usize],
        });
    }
    // Every windowed producer must own a buffer for the load path to read.
    for e in &net.edges {
        if buffers[e.producer].is_none() {
            return Err(InterpError::MissingBuffer { stage: e.producer });
        }
    }

    // Netlist-buffer index per stage and per-buffer gating condition.
    let mut buf_of_stage: Vec<Option<usize>> = vec![None; net.stages.len()];
    for (i, b) in net.buffers.iter().enumerate() {
        buf_of_stage[b.stage] = Some(i);
    }
    let gates: Vec<Option<BufferGate>> = (0..net.buffers.len())
        .map(|i| {
            net.gating
                .as_ref()
                .and_then(|g| g.gate_for(i))
                .copied()
                // FIFO chains are dataflow-clocked; the gating pass never
                // targets them.
                .filter(|_| !net.buffers[i].fifo)
        })
        .collect();

    let mut scratch = trace.as_ref().map(|_| TraceScratch {
        cycle_reads: vec![Vec::new(); net.buffers.len()],
        cycle_counts: net
            .buffers
            .iter()
            .map(|b| vec![0u32; b.phys_blocks])
            .collect(),
        touched: vec![Vec::new(); net.buffers.len()],
        consumed: vec![false; net.buffers.len()],
        prev_out: vec![0; net.stages.len()],
    });

    // Shift-register arrays, one per edge — exactly the register arrays
    // the netlist declares (`sra_cells` sizes both).
    let mut sras: Vec<SraState> = net
        .edges
        .iter()
        .map(|e| {
            let width = crate::netlist::sra_columns(&e.window);
            SraState {
                height: e.window.height,
                width,
                lag: e.window.lag,
                data: vec![0; (e.window.height * width) as usize],
            }
        })
        .collect();

    // Input-stream binding and kernel lookup per stage.
    let mut input_of: Vec<Option<usize>> = vec![None; net.stages.len()];
    for (k, stage, _) in &streams {
        input_of[*stage] = Some(*k);
    }
    let kernels: Vec<Option<&Expr>> = net
        .stages
        .iter()
        .map(|s| {
            s.module.map(|m| match &net.modules[m].kind {
                ModuleKind::Stage(p) => &p.kernel,
                other => unreachable!("stage module of wrong kind: {other:?}"),
            })
        })
        .collect();
    // Per-stage slot -> edge index lookup for kernel taps.
    let slot_edge: Vec<Vec<usize>> = net
        .stages
        .iter()
        .map(|s| {
            let mut v: Vec<usize> = Vec::new();
            for (i, e) in net.edges.iter().enumerate() {
                if e.consumer == s.index {
                    if v.len() <= e.slot {
                        v.resize(e.slot + 1, usize::MAX);
                    }
                    v[e.slot] = i;
                }
            }
            v
        })
        .collect();

    let starts: Vec<i64> = net.stages.iter().map(|s| s.start_cycle as i64).collect();
    let end = starts.iter().map(|s| s + frame).max().unwrap_or(frame);

    let mut outputs: Vec<(usize, Image)> = net
        .stages
        .iter()
        .filter(|s| s.is_output)
        .map(|s| {
            let (sx, sy) = scales[s.index];
            (s.index, Image::new((w / sx) as u32, (h / sy) as u32))
        })
        .collect();
    let mut computed: Vec<i64> = vec![0; net.stages.len()];
    let mut sram_reads = 0u64;
    let mut sram_writes = 0u64;
    let mut gated_off_cycles = 0u64;

    for t in 0..end {
        // ---- Read phase: window-load paths fill the SRAs, stage
        // modules evaluate. SRAMs are read-first: reads see the data
        // written on previous edges.
        for s in &net.stages {
            let start = starts[s.index];
            if t < start || t >= start + frame {
                continue;
            }
            let k = t - start;
            let y = k.div_euclid(w);
            let x = k.rem_euclid(w);
            let (ccx, ccy) = scales[s.index];

            for (eidx, e) in net.edges.iter().enumerate() {
                if e.consumer != s.index {
                    continue;
                }
                let (pcx, pcy) = scales[e.producer];
                // Edge-active cadence: once per consumer-active row, at
                // every producer-grid column.
                if y % ccy != 0 || x % pcx != 0 {
                    continue;
                }
                let pw = w / pcx;
                let ph = h / pcy;
                let xp = x / pcx;
                let r0 = y / pcy;
                let bufidx = buf_of_stage[e.producer].expect("checked above");
                let gated_off = gates[bufidx].is_some_and(|g| !g.enabled_at(t as u64));
                let sra = &mut sras[eidx];
                // Shift left one column.
                let tracing = scratch.is_some();
                let mut sra_toggles = 0u64;
                for r in 0..sra.height as usize {
                    let base = r * sra.width as usize;
                    for c in 0..sra.width as usize - 1 {
                        if tracing {
                            sra_toggles +=
                                toggles(sra.data[base + c], sra.data[base + c + 1], pixel);
                        }
                        sra.data[base + c] = sra.data[base + c + 1];
                    }
                }
                let pb = buffers[e.producer].as_ref().expect("checked above");
                let nb = &net.buffers[bufidx];
                for j in 0..sra.height {
                    // Clamp-to-edge on the bottom rows: rows past the
                    // frame hold their last written value.
                    let row = (r0 + sra.lag as i64 + j as i64).min(ph - 1);
                    let cell = (j * sra.width + sra.width - 1) as usize;
                    let v = if gated_off {
                        // A gated-off read port supplies no data: a plan
                        // that gates a live consumer corrupts the output
                        // and fails the differential suite — semantics
                        // preservation is checked, not assumed.
                        0
                    } else {
                        let slot = (row.rem_euclid(pb.rows as i64) * pw + xp) as usize;
                        sram_reads += 1;
                        pb.data[slot]
                    };
                    if let Some(ts) = scratch.as_mut() {
                        sra_toggles += toggles(sra.data[cell], v, pixel);
                        if !gated_off {
                            ts.consumed[bufidx] = true;
                            if !nb.fifo {
                                if let Some(block) =
                                    nb.block_of(row as u64, xp as u32, geom.pixel_bits)
                                {
                                    // Reads merge on identical (block,
                                    // row, column) within one cycle —
                                    // the cycle simulator's convention.
                                    // Candidates are collected here and
                                    // deduplicated once at end of cycle.
                                    ts.cycle_reads[bufidx].push((block, row, xp));
                                }
                            }
                        }
                    }
                    sra.data[cell] = v;
                }
                if let Some(tr) = trace.as_deref_mut() {
                    let sa = &mut tr.sras[eidx];
                    sa.shift_cycles += 1;
                    sa.cell_writes += (sra.height * sra.width) as u64;
                    sa.bit_toggles += sra_toggles;
                }
            }

            // Compute fires on the stage's own cadence only.
            if y % ccy != 0 || x % ccx != 0 {
                continue;
            }
            computed[s.index] = match input_of[s.index] {
                Some(idx) => trunc(inputs[idx].get(x as u32, y as u32), pixel),
                None => {
                    let kernel = kernels[s.index].expect("compute stage has a kernel");
                    let slots = &slot_edge[s.index];
                    let edges = &net.edges;
                    let wide = eval_acc(kernel, acc, &mut |slot, dx, dy| {
                        let eidx = slots[slot];
                        let sra = &sras[eidx];
                        let (pcx, _) = scales[edges[eidx].producer];
                        // Newest SRA column holds producer column x/pcx.
                        let newest = x / pcx;
                        let j = (dy as u32).saturating_sub(sra.lag);
                        let col = (newest + dx as i64).max(0);
                        let c = (sra.width as i64 - 1 - (newest - col)).max(0) as u32;
                        sra.data[(j * sra.width + c) as usize]
                    });
                    // The stage output register truncates the wide result
                    // to the pixel datapath.
                    trunc(wide, pixel)
                }
            };
            if let (Some(tr), Some(ts)) = (trace.as_deref_mut(), scratch.as_mut()) {
                let sa = &mut tr.stages[s.index];
                sa.active_cycles += 1;
                if s.module.is_some() {
                    // Compute stages own a clocked output register.
                    sa.out_reg_writes += 1;
                    sa.out_reg_toggles += toggles(ts.prev_out[s.index], computed[s.index], pixel);
                    ts.prev_out[s.index] = computed[s.index];
                }
            }
        }

        // ---- Write phase: line-buffer write ports and output streams
        // commit at the clock edge.
        for s in &net.stages {
            let start = starts[s.index];
            if t < start || t >= start + frame {
                continue;
            }
            let k = t - start;
            let y = k.div_euclid(w);
            let x = k.rem_euclid(w);
            let (cx, cy) = scales[s.index];
            // A stage only produces on its own cadence.
            if y % cy != 0 || x % cx != 0 {
                continue;
            }
            let (yc, xc) = (y / cy, x / cx);
            let value = computed[s.index];

            if let Some(sb) = buffers[s.index].as_mut() {
                let slot = (yc.rem_euclid(sb.rows as i64) * (w / cx) + xc) as usize;
                sb.data[slot] = value;
                sram_writes += 1;
                if let (Some(tr), Some(ts)) = (trace.as_deref_mut(), scratch.as_mut()) {
                    let bufidx = buf_of_stage[s.index].expect("writer owns a buffer");
                    let nb = &net.buffers[bufidx];
                    if !nb.fifo {
                        if let Some(block) = nb.block_of(yc as u64, xc as u32, geom.pixel_bits) {
                            tr.buffers[bufidx].block_writes[block] += 1;
                            bump(&mut ts.cycle_counts[bufidx], &mut ts.touched[bufidx], block);
                        }
                    }
                }
            }

            if s.is_output {
                if let Some((_, img)) = outputs.iter_mut().find(|(i, _)| *i == s.index) {
                    img.set(xc as u32, yc as u32, value);
                }
            }
        }

        // ---- End of cycle: gated-off counting, per-block peaks, read
        // port enable duty.
        if net.gating.is_some() {
            for (i, g) in gates.iter().enumerate() {
                if let Some(g) = g {
                    if !g.enabled_at(t as u64) {
                        gated_off_cycles += 1;
                        if let Some(tr) = trace.as_deref_mut() {
                            tr.buffers[i].gated_off_cycles += 1;
                        }
                    }
                }
            }
        }
        if let (Some(tr), Some(ts)) = (trace.as_deref_mut(), scratch.as_mut()) {
            for (i, gate) in gates.iter().enumerate() {
                if !ts.cycle_reads[i].is_empty() {
                    ts.cycle_reads[i].sort_unstable();
                    ts.cycle_reads[i].dedup();
                    for k in 0..ts.cycle_reads[i].len() {
                        let (block, _, _) = ts.cycle_reads[i][k];
                        tr.buffers[i].block_reads[block] += 1;
                        bump(&mut ts.cycle_counts[i], &mut ts.touched[i], block);
                    }
                    ts.cycle_reads[i].clear();
                }
                for k in 0..ts.touched[i].len() {
                    let block = ts.touched[i][k];
                    let count = ts.cycle_counts[i][block];
                    if count > tr.buffers[i].block_peaks[block] {
                        tr.buffers[i].block_peaks[block] = count;
                    }
                    ts.cycle_counts[i][block] = 0;
                }
                ts.touched[i].clear();
                let nb = &net.buffers[i];
                if nb.phys_blocks > 0 && !nb.fifo {
                    let enabled = gate.is_none_or(|g| g.enabled_at(t as u64));
                    if enabled {
                        tr.buffers[i].read_enabled_cycles += 1;
                        if !ts.consumed[i] {
                            tr.buffers[i].idle_read_cycles += 1;
                        }
                    }
                }
                ts.consumed[i] = false;
            }
        }
    }

    if let Some(tr) = trace {
        tr.run_cycles = end as u64;
        tr.frame = net.frame;
        // FIFO chains: one push and one pop per segment per live cycle —
        // the cycle simulator's synthetic SODA accounting (Sec. 3.1), so
        // the two counting paths stay comparable on FIFO designs too.
        // Multirate producers push one stage-grid frame, not a base frame.
        for (i, b) in tr.buffers.iter_mut().enumerate() {
            if b.fifo {
                let s = net.buffers[i].stage;
                let live = net.frame / (net.stages[s].scale_x * net.stages[s].scale_y);
                for r in b.block_reads.iter_mut() {
                    *r = live;
                }
                for wr in b.block_writes.iter_mut() {
                    *wr = live;
                }
                for p in b.block_peaks.iter_mut() {
                    *p = 2;
                }
            }
        }
    }

    Ok(InterpReport {
        cycles: end as u64,
        // The cycle after the last output pixel is the netlist's own
        // done-cycle (the `frame_done` comparator), derived once by the
        // builder.
        latency: net.done_cycle,
        output_images: outputs,
        sram_reads,
        sram_writes,
        gated_off_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{build_netlist, BitWidths};
    use imagen_ir::Dag;
    use imagen_mem::{DesignStyle, ImageGeometry, MemBackend, MemorySpec};
    use imagen_schedule::{plan_design, ScheduleOptions};
    use imagen_sim::{execute, simulate};

    fn blur_plan() -> (Dag, imagen_mem::Design, ImageGeometry) {
        let mut dag = Dag::new("ip");
        let k0 = dag.add_input("K0");
        let k1 = dag
            .add_stage(
                "K1",
                &[k0],
                Expr::sum((0..9).map(|i| Expr::tap(0, i % 3 - 1, i / 3 - 1))),
            )
            .unwrap();
        dag.mark_output(k1);
        let geom = ImageGeometry {
            width: 20,
            height: 14,
            pixel_bits: 16,
        };
        let spec = MemorySpec::new(
            MemBackend::Asic {
                block_bits: 2 * geom.row_bits(),
            },
            2,
        );
        let p = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        (p.dag, p.design, geom)
    }

    #[test]
    fn interpreter_matches_golden_and_cycle_sim() {
        let (dag, design, geom) = blur_plan();
        let input = Image::from_fn(geom.width, geom.height, |x, y| {
            ((x * 7 + y * 13) % 97) as i64
        });
        let net = build_netlist(&dag, &design, &BitWidths::default());
        let report = interpret(&net, std::slice::from_ref(&input)).unwrap();

        let golden = execute(&dag, std::slice::from_ref(&input)).unwrap();
        let sim = simulate(&dag, &design, std::slice::from_ref(&input)).unwrap();
        assert!(sim.is_clean());
        for (stage, img) in &report.output_images {
            let gold = golden.stage(imagen_ir::StageId::from_index(*stage));
            assert_eq!(img, gold, "netlist vs golden");
            let (_, simg) = sim
                .output_images
                .iter()
                .find(|(i, _)| i == stage)
                .expect("sim produced the stream");
            assert_eq!(img, simg, "netlist vs cycle model");
        }
        assert_eq!(report.latency, sim.latency as u64);
        assert!(report.sram_reads > 0 && report.sram_writes > 0);
    }

    #[test]
    fn default_widths_truncate_like_hardware() {
        // A kernel that overflows 16 bits: the netlist at default widths
        // wraps on the output register (real hardware); at wide widths it
        // matches the untruncated software model.
        let mut dag = Dag::new("ovf");
        let k0 = dag.add_input("K0");
        let k1 = dag
            .add_stage(
                "K1",
                &[k0],
                Expr::bin(
                    imagen_ir::BinOp::Mul,
                    Expr::tap(0, 0, 0),
                    Expr::tap(0, 0, 0),
                ),
            )
            .unwrap();
        dag.mark_output(k1);
        let geom = ImageGeometry {
            width: 8,
            height: 6,
            pixel_bits: 16,
        };
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 256 }, 2);
        let p = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        let input = Image::from_fn(geom.width, geom.height, |_, _| 300);
        let golden = execute(&p.dag, std::slice::from_ref(&input)).unwrap();
        let gold_v = golden.stage(imagen_ir::StageId::from_index(1)).get(4, 3);
        assert_eq!(gold_v, 90_000, "software model does not truncate");

        let narrow = build_netlist(&p.dag, &p.design, &BitWidths::default());
        let r = interpret(&narrow, std::slice::from_ref(&input)).unwrap();
        assert_eq!(
            r.output_images[0].1.get(4, 3),
            super::trunc(90_000, 16),
            "16-bit register wraps"
        );

        let wide = build_netlist(&p.dag, &p.design, &BitWidths::wide());
        let r = interpret(&wide, std::slice::from_ref(&input)).unwrap();
        assert_eq!(r.output_images[0].1.get(4, 3), 90_000);
    }

    #[test]
    fn negative_only_horizontal_taps_execute_correctly() {
        // A kernel tapping only dx = -1 keeps dx_max = -1 after
        // normalization (the shift clamps at zero), so the window spans
        // one column but the executed SRA must still reach the current
        // raster column to supply the previous pixel. The netlist
        // declares that storage (`sra_cells`), the interpreter executes
        // it, and verification sees consistent shapes.
        let mut dag = Dag::new("negdx");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], Expr::tap(0, -1, 0)).unwrap();
        dag.mark_output(k1);
        let geom = ImageGeometry {
            width: 10,
            height: 6,
            pixel_bits: 16,
        };
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 512 }, 2);
        let p = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        let e = p.dag.edges().next().unwrap().1;
        assert_eq!(e.window().dx_max, -1, "normalization keeps dx_max < 0");

        let net = build_netlist(&p.dag, &p.design, &BitWidths::default());
        crate::verify_structure(&net).unwrap();
        let sra = net
            .top_module()
            .net("sra_K1_0")
            .expect("window register array declared");
        assert_eq!(sra.array, Some(2), "two columns: tap dx=-1 plus dx=0");

        let input = Image::from_fn(geom.width, geom.height, |x, y| (x * 10 + y) as i64);
        let run = interpret(&net, std::slice::from_ref(&input)).unwrap();
        let golden = execute(&p.dag, std::slice::from_ref(&input)).unwrap();
        assert_eq!(
            &run.output_images[0].1,
            golden.stage(imagen_ir::StageId::from_index(1)),
            "previous-column semantics, clamped at the left edge"
        );
    }

    #[test]
    fn input_validation() {
        let (dag, design, geom) = blur_plan();
        let net = build_netlist(&dag, &design, &BitWidths::default());
        assert!(matches!(
            interpret(&net, &[]),
            Err(InterpError::InputCount { .. })
        ));
        let wrong = Image::new(3, 3);
        assert!(matches!(
            interpret(&net, &[wrong]),
            Err(InterpError::GeometryMismatch)
        ));
        let _ = geom;
    }

    #[test]
    fn tracing_changes_nothing() {
        // The activity sink observes; it must not perturb: same pixels,
        // same latency, same legacy access totals with and without it.
        let (dag, design, geom) = blur_plan();
        let input = Image::from_fn(geom.width, geom.height, |x, y| {
            ((x * 11 + y * 5) % 89) as i64
        });
        let net = build_netlist(&dag, &design, &BitWidths::default());
        let plain = interpret(&net, std::slice::from_ref(&input)).unwrap();
        let (traced, trace) = interpret_with_trace(&net, std::slice::from_ref(&input)).unwrap();

        assert_eq!(plain.cycles, traced.cycles);
        assert_eq!(plain.latency, traced.latency);
        assert_eq!(plain.sram_reads, traced.sram_reads);
        assert_eq!(plain.sram_writes, traced.sram_writes);
        assert_eq!(plain.gated_off_cycles, 0);
        assert_eq!(traced.gated_off_cycles, 0);
        assert_eq!(plain.output_images.len(), traced.output_images.len());
        for ((a, ia), (b, ib)) in plain.output_images.iter().zip(&traced.output_images) {
            assert_eq!(a, b);
            assert_eq!(ia, ib);
        }

        // Trace shape and sanity: the input stage's buffer is written
        // once per pixel, the consumer is active one frame, and the
        // always-on read port idles before the consumer starts.
        assert_eq!(trace.run_cycles, plain.cycles);
        assert_eq!(trace.frame, net.frame);
        assert_eq!(trace.buffers[0].writes(), net.frame);
        assert!(trace.buffers[0].reads() > 0);
        assert_eq!(trace.stages[1].active_cycles, net.frame);
        assert_eq!(trace.stages[1].out_reg_writes, net.frame);
        assert!(trace.sras[0].shift_cycles == net.frame);
        assert!(trace.sras[0].bit_toggles > 0);
        assert_eq!(trace.buffers[0].read_enabled_cycles, plain.cycles);
        assert!(
            trace.buffers[0].idle_read_cycles > 0,
            "the ungated read port idles before the consumer window"
        );
        assert_eq!(trace.gated_off_cycles(), 0);
    }

    #[test]
    fn trunc_behaves() {
        assert_eq!(trunc(90_000, 16), 90_000 - 65_536);
        assert_eq!(trunc(-5, 16), -5);
        assert_eq!(trunc(i64::MAX, 64), i64::MAX);
        assert_eq!(trunc(32_767, 16), 32_767);
        assert_eq!(trunc(32_768, 16), -32_768);
    }
}
