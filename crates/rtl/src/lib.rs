//! # imagen-rtl
//!
//! The RTL backend of [ImaGen] (the "RTL Code Gen" box of the paper's
//! Fig. 5), built around a typed structural netlist IR:
//!
//! ```text
//! Design ──build_netlist()──▶ Netlist ──┬─ emit_verilog()          → .v text
//!                                       ├─ interpret()             → executed frames
//!                                       ├─ interpret_with_trace()  → frames + ActivityTrace
//!                                       ├─ verify_structure()      → arity/width/driver checks
//!                                       └─ report_resources()      → SRAM/FF/operator inventory
//! ```
//!
//! * [`build_netlist`] elaborates a scheduled [`imagen_mem::Design`] into
//!   a [`Netlist`]: modules, typed ports and nets, instances, registers,
//!   SRAM primitives and kernel expression nets, at configurable
//!   [`BitWidths`];
//! * [`emit_verilog`] prints the netlist as self-contained synthesizable
//!   Verilog (byte-identical to the original string emitter at default
//!   widths, pinned by golden files);
//! * [`interpret`] **executes** the netlist cycle by cycle — the
//!   verification loop no synthesis tool in this environment could close:
//!   the emitted design itself is run and checked bit-exact against the
//!   golden executor and the cycle-level simulator. It compiles the
//!   netlist once into a flat evaluation program ([`EvalProgram`]) and
//!   streams the frame through that — an order of magnitude faster than
//!   the reference graph-walking path ([`interpret_legacy`]), which
//!   remains available as the differential baseline;
//! * [`interpret_with_trace`] additionally collects an [`ActivityTrace`]
//!   (per-SRAM-bank access counts, register toggle totals, enable duty
//!   cycles) that `imagen-power` prices into measured energy — and the
//!   interpreter honors an attached clock-[`GatingPlan`], counting the
//!   gated-off read-port cycles;
//! * [`verify_all`] checks the netlist structurally (port arity/width of
//!   every instantiation, driver/undriven-net analysis), accumulating
//!   every problem into an [`RtlReport`]; [`verify_structure`] is its
//!   first-error `Result` facade;
//! * [`report_resources`] inventories the instantiated hardware for
//!   design-space exploration;
//! * [`generate_testbench`] emits a self-checking testbench wired to the
//!   netlist's stream interface, with [`TestVectors::from_golden`]
//!   deriving stimulus/expectations from the golden executor.
//!
//! [ImaGen]: https://arxiv.org/abs/2304.03352

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod emit;
mod interp;
mod netlist;
mod program;
mod resources;
mod testbench;
mod verify;

pub use activity::{ActivityTrace, BufferActivity, SraActivity, StageActivity};
pub use emit::emit_verilog;
pub use interp::{
    eval_acc, interpret, interpret_legacy, interpret_with_trace, interpret_with_trace_legacy,
    trunc, InterpError, InterpReport,
};
pub use netlist::{
    build_netlist, sra_cells, sra_columns, BitWidths, BufferGate, Conn, Dir, GatingPlan, Instance,
    Item, LineBufPayload, Module, ModuleKind, Net, NetBuffer, NetEdge, NetStage, Netlist,
    StagePayload,
};
pub use program::EvalProgram;
pub use resources::{report_resources, report_resources_for, ResourceReport};
pub use testbench::{generate_testbench, TestVectors};
pub use verify::{verify_all, verify_structure, RtlError, RtlReport, RtlSummary};

use imagen_ir::Dag;
use imagen_mem::Design;

/// Generates the complete Verilog source for a planned design at the
/// default [`BitWidths`] — shorthand for
/// `emit_verilog(&build_netlist(dag, design, &BitWidths::default()))`.
pub fn generate_verilog(dag: &Dag, design: &Design) -> String {
    emit_verilog(&build_netlist(dag, design, &BitWidths::default()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagen_mem::{DesignStyle, ImageGeometry, MemBackend, MemorySpec};
    use imagen_schedule::{plan_design, ScheduleOptions};

    fn plan() -> (imagen_ir::Dag, imagen_mem::Design) {
        let mut dag = imagen_ir::Dag::new("fig1");
        let k0 = dag.add_input("K0");
        let k1 = dag
            .add_stage(
                "K1",
                &[k0],
                imagen_ir::Expr::sum((0..9).map(|i| imagen_ir::Expr::tap(0, i % 3 - 1, i / 3 - 1))),
            )
            .unwrap();
        let k2 = dag
            .add_stage(
                "K2",
                &[k1],
                imagen_ir::Expr::bin(
                    imagen_ir::BinOp::Div,
                    imagen_ir::Expr::sum(
                        (0..9).map(|i| imagen_ir::Expr::tap(0, i % 3 - 1, i / 3 - 1)),
                    ),
                    imagen_ir::Expr::Const(9),
                ),
            )
            .unwrap();
        dag.mark_output(k2);
        let geom = ImageGeometry {
            width: 32,
            height: 24,
            pixel_bits: 16,
        };
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 1024 }, 2);
        let p = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        (p.dag, p.design)
    }

    #[test]
    fn generated_netlist_verifies() {
        let (dag, design) = plan();
        let net = build_netlist(&dag, &design, &BitWidths::default());
        let summary = verify_structure(&net).unwrap();
        // 2 SRAM primitives + 2 stage modules + 2 linebuf modules + top.
        assert_eq!(summary.modules, 7);
        assert!(summary.sram_instances > 0);
        assert!(summary.instances > summary.sram_instances);
        assert!(summary.nets > 20);
        let v = emit_verilog(&net);
        assert!(v.lines().count() > 50);
        assert_eq!(v, generate_verilog(&dag, &design), "wrapper is the same");
    }

    #[test]
    fn verilog_mentions_schedule() {
        let (dag, design) = plan();
        let v = generate_verilog(&dag, &design);
        // Start-cycle comparators embed the ILP schedule.
        let s1 = design.start_cycles[1];
        assert!(v.contains(&format!("cycle >= 64'd{s1}")));
        assert!(v.contains("imagen_top_fig1"));
        assert!(v.contains("frame_done"));
    }

    #[test]
    fn kernels_translate_operators() {
        let (dag, design) = plan();
        let v = generate_verilog(&dag, &design);
        assert!(v.contains("stage_K1"));
        assert!(v.contains("stage_K2"));
        // The /9 kernel guards division by zero.
        assert!(v.contains("== 0) ? 0 :"));
    }

    #[test]
    fn single_port_designs_use_1p_macro() {
        let mut dag = imagen_ir::Dag::new("sp");
        let k0 = dag.add_input("K0");
        let k1 = dag
            .add_stage(
                "K1",
                &[k0],
                imagen_ir::Expr::sum((0..3).map(|i| imagen_ir::Expr::tap(0, 0, i))),
            )
            .unwrap();
        dag.mark_output(k1);
        let geom = ImageGeometry {
            width: 32,
            height: 24,
            pixel_bits: 16,
        };
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 1024 }, 1);
        let p = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            DesignStyle::FixyNn,
        )
        .unwrap();
        let net = build_netlist(&p.dag, &p.design, &BitWidths::default());
        verify_structure(&net).unwrap();
        let v = emit_verilog(&net);
        assert!(v.contains("imagen_sram_1p"));
    }

    #[test]
    fn widths_flow_into_emission() {
        let (dag, design) = plan();
        let wide = emit_verilog(&build_netlist(&dag, &design, &BitWidths::wide()));
        assert!(wide.contains("signed [63:0] pixel_out"));
        assert!(wide.contains("parameter WIDTH = 64"));
        assert!(!wide.contains("signed [15:0]"));
        let custom = emit_verilog(&build_netlist(
            &dag,
            &design,
            &BitWidths {
                pixel_bits: 12,
                acc_bits: 24,
            },
        ));
        assert!(custom.contains("signed [11:0] pixel_out"));
        assert!(custom.contains("wire signed [23:0] result"));
    }
}
