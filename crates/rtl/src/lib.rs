//! # imagen-rtl
//!
//! Verilog code generation for [ImaGen] accelerators (the "RTL Code Gen"
//! box of the paper's Fig. 5).
//!
//! [`generate_verilog`] mechanically translates a scheduled
//! [`imagen_mem::Design`] into a self-contained (System)Verilog netlist:
//! per-stage compute modules from the DSL kernels, rotating line-buffer
//! modules over behavioral SRAM primitives, shift-register arrays, and a
//! top-level module whose control logic sequences the ILP-derived start
//! cycles. [`verify_structure`] checks the emitted netlist structurally
//! (no synthesis tool exists in this environment; see DESIGN.md §5).
//!
//! [ImaGen]: https://arxiv.org/abs/2304.03352

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod testbench;
mod verify;

pub use gen::{generate_verilog, ACC_BITS, PIXEL_BITS};
pub use testbench::{generate_testbench, TestVectors};
pub use verify::{verify_structure, RtlError, RtlSummary};

#[cfg(test)]
mod tests {
    use super::*;
    use imagen_mem::{DesignStyle, ImageGeometry, MemBackend, MemorySpec};
    use imagen_schedule::{plan_design, ScheduleOptions};

    fn plan() -> (imagen_ir::Dag, imagen_mem::Design) {
        let mut dag = imagen_ir::Dag::new("fig1");
        let k0 = dag.add_input("K0");
        let k1 = dag
            .add_stage(
                "K1",
                &[k0],
                imagen_ir::Expr::sum((0..9).map(|i| imagen_ir::Expr::tap(0, i % 3 - 1, i / 3 - 1))),
            )
            .unwrap();
        let k2 = dag
            .add_stage(
                "K2",
                &[k1],
                imagen_ir::Expr::bin(
                    imagen_ir::BinOp::Div,
                    imagen_ir::Expr::sum(
                        (0..9).map(|i| imagen_ir::Expr::tap(0, i % 3 - 1, i / 3 - 1)),
                    ),
                    imagen_ir::Expr::Const(9),
                ),
            )
            .unwrap();
        dag.mark_output(k2);
        let geom = ImageGeometry {
            width: 32,
            height: 24,
            pixel_bits: 16,
        };
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 1024 }, 2);
        let p = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        (p.dag, p.design)
    }

    #[test]
    fn generated_verilog_verifies() {
        let (dag, design) = plan();
        let v = generate_verilog(&dag, &design);
        let summary = verify_structure(&v).unwrap();
        // 2 SRAM primitives + 2 stage modules + 2 linebuf modules + top.
        assert_eq!(summary.modules, 7, "{v}");
        assert!(summary.sram_instances > 0);
        assert!(summary.lines > 50);
    }

    #[test]
    fn verilog_mentions_schedule() {
        let (dag, design) = plan();
        let v = generate_verilog(&dag, &design);
        // Start-cycle comparators embed the ILP schedule.
        let s1 = design.start_cycles[1];
        assert!(v.contains(&format!("cycle >= 64'd{s1}")));
        assert!(v.contains("imagen_top_fig1"));
        assert!(v.contains("frame_done"));
    }

    #[test]
    fn kernels_translate_operators() {
        let (dag, design) = plan();
        let v = generate_verilog(&dag, &design);
        assert!(v.contains("stage_K1"));
        assert!(v.contains("stage_K2"));
        // The /9 kernel guards division by zero.
        assert!(v.contains("== 0) ? 0 :"));
    }

    #[test]
    fn single_port_designs_use_1p_macro() {
        let mut dag = imagen_ir::Dag::new("sp");
        let k0 = dag.add_input("K0");
        let k1 = dag
            .add_stage(
                "K1",
                &[k0],
                imagen_ir::Expr::sum((0..3).map(|i| imagen_ir::Expr::tap(0, 0, i))),
            )
            .unwrap();
        dag.mark_output(k1);
        let geom = ImageGeometry {
            width: 32,
            height: 24,
            pixel_bits: 16,
        };
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 1024 }, 1);
        let p = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            DesignStyle::FixyNn,
        )
        .unwrap();
        let v = generate_verilog(&p.dag, &p.design);
        assert!(v.contains("imagen_sram_1p"));
        verify_structure(&v).unwrap();
    }
}
