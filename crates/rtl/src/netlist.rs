//! The typed structural netlist IR.
//!
//! [`build_netlist`] elaborates a scheduled [`Design`] into a [`Netlist`]:
//! modules with typed ports and nets, instances with named connections,
//! registers, SRAM primitives, and combinational expression nets. The
//! netlist is the single artifact every backend consumer works from:
//!
//! * [`emit_verilog`](crate::emit_verilog) prints it as the synthesizable
//!   Verilog the seed emitter produced (byte-identical at default widths);
//! * [`interpret`](crate::interpret) executes it cycle by cycle, closing
//!   the verification loop against the golden executor and the
//!   cycle-level simulator;
//! * [`verify_structure`](crate::verify_structure) checks it structurally
//!   (port arity/width of every instantiation, driver analysis);
//! * [`report_resources`](crate::report_resources) derives SRAM/flip-flop
//!   and operator inventories for design-space exploration.
//!
//! Alongside the generic module/net/instance structure, the domain nodes
//! ([`StagePayload`], [`LineBufPayload`], [`NetStage`], [`NetEdge`],
//! [`NetBuffer`]) retain the semantic payloads — kernels, stencil
//! windows, buffer geometry, the ILP start cycles — that make the netlist
//! executable and analyzable without re-deriving anything from the DAG.

use imagen_ir::{Dag, Expr, StageId, StageKind, Window};
use imagen_mem::{Design, DesignStyle, ImageGeometry};

/// Datapath bit widths of the generated hardware, set in exactly one
/// place and threaded through the netlist builder.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BitWidths {
    /// Pixel datapath width (stage outputs, line-buffer words, stream
    /// ports). Values wider than this wrap on the stage output register.
    pub pixel_bits: u32,
    /// Intermediate arithmetic width: kernels are evaluated wide, then
    /// truncated on the stage output register (the simulator's
    /// wide-then-store semantics).
    pub acc_bits: u32,
}

impl Default for BitWidths {
    fn default() -> Self {
        BitWidths {
            pixel_bits: 16,
            acc_bits: 32,
        }
    }
}

impl BitWidths {
    /// Widths at which hardware arithmetic coincides exactly with the
    /// software model's `i64` semantics (no truncation anywhere) — the
    /// configuration the differential suite uses to prove the netlist
    /// bit-exact against the golden executor on full-range inputs.
    pub fn wide() -> BitWidths {
        BitWidths {
            pixel_bits: 64,
            acc_bits: 64,
        }
    }
}

/// Port/net direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dir {
    /// Driven from outside the module.
    Input,
    /// Driven inside the module.
    Output,
}

/// A named signal of a module: a wire or register, possibly an unpacked
/// array (`array` is the element count), possibly a port (`port` is its
/// direction at the module boundary).
#[derive(Clone, Debug)]
pub struct Net {
    /// Identifier within the module.
    pub name: String,
    /// Bit width of one element.
    pub width: u32,
    /// Whether the signal is signed.
    pub signed: bool,
    /// Unpacked-array element count (`None` for scalars).
    pub array: Option<u32>,
    /// Whether the signal is a register (clocked state).
    pub is_reg: bool,
    /// Port direction when the net crosses the module boundary.
    pub port: Option<Dir>,
}

/// How an instance port is connected.
#[derive(Clone, Debug)]
pub enum Conn {
    /// Connected to a whole local net.
    Net(String),
    /// Connected to one element of a local array net.
    NetIndex(String, u32),
    /// Connected to a sized constant.
    Const(u64, u32),
    /// Connected to an anonymous combinational expression of local nets
    /// (bank-select decode and similar glue).
    Expr(String),
    /// Left unconnected (legal for outputs only).
    Open,
}

/// A module instantiation.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Name of the instantiated module.
    pub module: String,
    /// Instance identifier.
    pub name: String,
    /// Named port connections.
    pub conns: Vec<(String, Conn)>,
}

/// A structural item of a module: every item names the net(s) it drives,
/// which is what the driver analysis in
/// [`verify_structure`](crate::verify_structure) walks.
#[derive(Clone, Debug)]
pub enum Item {
    /// A continuous assignment driving `net` from a combinational
    /// expression of other nets.
    Assign {
        /// The driven net.
        net: String,
    },
    /// A clocked register driving `net`.
    Register {
        /// The driven net.
        net: String,
    },
    /// A module instantiation (drives the nets its output ports connect).
    Inst(Instance),
    /// The window-load path of one consumer edge: each active cycle it
    /// shifts the `sra` register array left and loads one column read
    /// from the producer's line buffer (clamp-to-edge on the bottom
    /// rows). This is the full elaboration of the read fan-out that the
    /// pinned Verilog renderer still abbreviates (see `emit`'s module
    /// docs); the interpreter executes it.
    WindowLoad {
        /// The driven shift-register-array net.
        sra: String,
        /// Index into [`Netlist::edges`].
        edge: usize,
    },
}

/// Semantic payload of a stage compute module.
#[derive(Clone, Debug)]
pub struct StagePayload {
    /// Index of the stage in the DAG.
    pub stage: usize,
    /// Stencil windows in producer-slot order.
    pub windows: Vec<Window>,
    /// The kernel expression evaluated once per output pixel.
    pub kernel: Expr,
}

/// Semantic payload of a line-buffer module (rotating SRAM banks).
#[derive(Clone, Debug)]
pub struct LineBufPayload {
    /// Index into [`Netlist::buffers`].
    pub buffer: usize,
}

/// What a module is.
#[derive(Clone, Debug)]
pub enum ModuleKind {
    /// A behavioral SRAM primitive with `rw_ports` ports.
    SramPrimitive {
        /// Number of access ports (1 or 2).
        rw_ports: u32,
    },
    /// A per-stage combinational compute module with a registered output.
    Stage(StagePayload),
    /// A rotating line buffer over SRAM blocks.
    LineBuffer(LineBufPayload),
    /// The top-level module: cycle counter, per-stage control, stage and
    /// line-buffer instances, stream ports.
    Top,
}

/// One module of the netlist.
#[derive(Clone, Debug)]
pub struct Module {
    /// Module name (unique within the netlist).
    pub name: String,
    /// What the module is.
    pub kind: ModuleKind,
    /// All signals, ports included, in declaration order.
    pub nets: Vec<Net>,
    /// Structural contents in elaboration order.
    pub items: Vec<Item>,
}

impl Module {
    /// Ports in declaration order.
    pub fn ports(&self) -> impl Iterator<Item = &Net> {
        self.nets.iter().filter(|n| n.port.is_some())
    }

    /// Looks up a net (or port) by name.
    pub fn net(&self, name: &str) -> Option<&Net> {
        self.nets.iter().find(|n| n.name == name)
    }

    /// The stage payload, when this is a stage compute module.
    pub fn stage_payload(&self) -> Option<&StagePayload> {
        match &self.kind {
            ModuleKind::Stage(p) => Some(p),
            _ => None,
        }
    }
}

/// Per-stage control/schedule information mirrored into the netlist.
#[derive(Clone, Debug)]
pub struct NetStage {
    /// Stage index in the DAG (= topological position).
    pub index: usize,
    /// Stage name as authored.
    pub name: String,
    /// Identifier-safe stage name used for nets and module names.
    pub sanitized: String,
    /// `Some(k)` when this is the `k`-th input stream; `None` for compute
    /// stages.
    pub input_stream: Option<usize>,
    /// Index into [`Netlist::modules`] of the stage compute module
    /// (`None` for input stages).
    pub module: Option<usize>,
    /// Whether the stage drives an output stream.
    pub is_output: bool,
    /// ILP start cycle.
    pub start_cycle: u64,
    /// Cumulative horizontal rate scale (`1` for rate-1 stages): the
    /// stage computes only on base cycles with `x % scale_x == 0`.
    pub scale_x: u64,
    /// Cumulative vertical rate scale (`1` for rate-1 stages): the stage
    /// computes only on base rows with `y % scale_y == 0`.
    pub scale_y: u64,
}

impl NetStage {
    /// Whether the stage runs at a non-unit cumulative rate.
    pub fn is_multirate(&self) -> bool {
        self.scale_x != 1 || self.scale_y != 1
    }
}

/// One producer→consumer stencil edge mirrored into the netlist.
#[derive(Clone, Debug)]
pub struct NetEdge {
    /// Producer stage index.
    pub producer: usize,
    /// Consumer stage index.
    pub consumer: usize,
    /// Tap slot in the consumer's kernel.
    pub slot: usize,
    /// The stencil window (normalized coordinates).
    pub window: Window,
}

/// One planned line buffer mirrored into the netlist.
#[derive(Clone, Debug)]
pub struct NetBuffer {
    /// Producer stage index owning the buffer.
    pub stage: usize,
    /// Index into [`Netlist::modules`] of the line-buffer module.
    pub module: usize,
    /// Rows physically allocated by the plan.
    pub phys_rows: u32,
    /// Rows required by the schedule.
    pub logical_rows: u32,
    /// Rows of rotating storage the hardware holds
    /// (`phys_rows.max(logical_rows).max(1)` — the cycle simulator's
    /// storage model).
    pub storage_rows: u32,
    /// Number of SRAM blocks instantiated.
    pub blocks: usize,
    /// SRAM blocks the plan actually allocated (`0` for pure-DFF
    /// buffers, where [`NetBuffer::blocks`] still instantiates one for
    /// the pinned module shape).
    pub phys_blocks: usize,
    /// Ports per block.
    pub ports: u32,
    /// Rows sharing one block (the coalescing factor `g`).
    pub rows_per_block: u32,
    /// Blocks one row spans when rows exceed block capacity.
    pub blocks_per_row: u32,
    /// Allocated capacity of one block, bits (the bank-select segment
    /// size when rows split across blocks).
    pub block_capacity_bits: u64,
    /// Whether the plan allocated FIFO segments (SODA-style) rather than
    /// rotating line stores.
    pub fifo: bool,
    /// Words per SRAM macro (power of two).
    pub depth: u64,
    /// Address width of the macros.
    pub aw: u32,
}

impl NetBuffer {
    /// Maps an absolute image row (+ column for split rows) to the index
    /// of the physical block serving it — the netlist mirror of
    /// `BufferPlan::block_of`, pinned equal by test so the interpreter's
    /// activity accounting and the cycle simulator's agree on bank
    /// attribution.
    ///
    /// Returns `None` for buffers with no allocated SRAM blocks.
    pub fn block_of(&self, abs_row: u64, x: u32, pixel_bits: u32) -> Option<usize> {
        if self.phys_blocks == 0 || self.phys_rows == 0 {
            return None;
        }
        let phys_row = (abs_row % self.phys_rows as u64) as u32;
        let idx = if self.blocks_per_row > 1 {
            let seg = (x as u64 * pixel_bits as u64) / self.block_capacity_bits.max(1);
            phys_row as u64 * self.blocks_per_row as u64 + seg
        } else {
            (phys_row / self.rows_per_block.max(1)) as u64
        };
        Some((idx as usize).min(self.phys_blocks - 1))
    }
}

/// The temporal clock-gating condition of one line buffer: its read port
/// is enabled only while some consumer's ILP window is live, instead of
/// the ungated `ren = 1'b1`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BufferGate {
    /// Index into [`Netlist::buffers`].
    pub buffer: usize,
    /// First cycle (inclusive) the read port is enabled.
    pub read_start: u64,
    /// First cycle (exclusive) past the last enabled read.
    pub read_end: u64,
}

impl BufferGate {
    /// Whether the gated read port is enabled at cycle `t`.
    pub fn enabled_at(&self, t: u64) -> bool {
        t >= self.read_start && t < self.read_end
    }
}

/// A clock-gating plan attached to a netlist by
/// `imagen_power::gate_clocks`: per-buffer read-enable windows derived
/// from the ILP-scheduled stage enables. `None` (the builder's default)
/// is the ungated design, whose emission is pinned byte-identical to the
/// seed emitter.
#[derive(Clone, Debug, Default)]
pub struct GatingPlan {
    /// One gate per gated buffer, ascending by buffer index.
    pub gates: Vec<BufferGate>,
}

impl GatingPlan {
    /// The gate covering `buffer`, if any.
    pub fn gate_for(&self, buffer: usize) -> Option<&BufferGate> {
        self.gates.iter().find(|g| g.buffer == buffer)
    }
}

/// A fully elaborated accelerator netlist.
#[derive(Clone, Debug)]
pub struct Netlist {
    /// Pipeline name as authored.
    pub name: String,
    /// Identifier-safe pipeline name.
    pub sanitized: String,
    /// Generator style label (carried into the header comment).
    pub style: DesignStyle,
    /// Frame geometry the design was compiled for.
    pub geometry: ImageGeometry,
    /// Datapath widths the netlist was elaborated at.
    pub widths: BitWidths,
    /// Per-stage control information, in topological order.
    pub stages: Vec<NetStage>,
    /// Stencil edges in DAG edge order (slot order per consumer).
    pub edges: Vec<NetEdge>,
    /// Line buffers in design order.
    pub buffers: Vec<NetBuffer>,
    /// All modules: SRAM primitives, stage modules, line-buffer modules,
    /// then the top module.
    pub modules: Vec<Module>,
    /// Index of the top module in [`Netlist::modules`].
    pub top: usize,
    /// Pixels per frame (`width * height`).
    pub frame: u64,
    /// Cycle at which the last output pixel has streamed out.
    pub done_cycle: u64,
    /// Clock-gating plan, if the netlist has been through
    /// `imagen_power::gate_clocks` (`None` from [`build_netlist`]).
    pub gating: Option<GatingPlan>,
}

impl Netlist {
    /// The top-level module.
    pub fn top_module(&self) -> &Module {
        &self.modules[self.top]
    }

    /// Whether a clock-gating plan is attached.
    pub fn is_gated(&self) -> bool {
        self.gating.is_some()
    }

    /// Looks up a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// Input streams: `(stream index, stage index, start cycle)`.
    pub fn input_streams(&self) -> Vec<(usize, usize, u64)> {
        self.stages
            .iter()
            .filter_map(|s| s.input_stream.map(|k| (k, s.index, s.start_cycle)))
            .collect()
    }

    /// The compute module of a stage, by DAG stage index (`None` for
    /// input stages).
    pub fn stage_module(&self, stage: usize) -> Option<&Module> {
        let m = self.stages.iter().find(|s| s.index == stage)?.module?;
        self.modules.get(m)
    }

    /// The kernel expression a stage's datapath evaluates, by DAG stage
    /// index — the term the translation-validation pass certifies
    /// against the lowered DSL kernel.
    pub fn stage_kernel(&self, stage: usize) -> Option<&Expr> {
        self.stage_module(stage)?.stage_payload().map(|p| &p.kernel)
    }

    /// Edges consumed by a stage: `(edge index, edge)`, in edge order.
    pub fn consumer_edges(&self, consumer: usize) -> impl Iterator<Item = (usize, &NetEdge)> {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| e.consumer == consumer)
    }

    /// The line buffer owned by a producer stage, with its index into
    /// [`Netlist::buffers`].
    pub fn buffer_of_stage(&self, stage: usize) -> Option<(usize, &NetBuffer)> {
        self.buffers
            .iter()
            .enumerate()
            .find(|(_, b)| b.stage == stage)
    }

    /// The half-open cycle window `[start, start + frame)` during which a
    /// stage is enabled — the netlist's mirror of the ILP `Plan` enables,
    /// which the stream-alignment prover replays symbolically.
    pub fn enable_window(&self, stage: usize) -> Option<(u64, u64)> {
        self.stages
            .iter()
            .find(|s| s.index == stage)
            .map(|s| (s.start_cycle, s.start_cycle + self.frame))
    }

    /// Output streams: `(stream index, stage index, start cycle)`, in
    /// stage order (the order the `stream_out_*` ports are declared).
    pub fn output_streams(&self) -> Vec<(usize, usize, u64)> {
        self.stages
            .iter()
            .filter(|s| s.is_output)
            .enumerate()
            .map(|(k, s)| (k, s.index, s.start_cycle))
            .collect()
    }
}

/// Replaces non-alphanumeric characters so names are Verilog identifiers.
pub(crate) fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Columns of the shift-register array serving one window: the span from
/// the oldest tap to the *current* raster column (`dx = 0`), even when
/// `dx_max < 0`, because the load path always shifts the just-read pixel
/// in at the right edge — the same storage the cycle-level simulator
/// models. For the common `dx_max = 0` window this equals `width()`.
///
/// Public so the symbolic certifier can cross-check declared SRA nets
/// against the windows they were sized from.
pub fn sra_columns(w: &Window) -> u32 {
    (-w.dx_min + 1).max(1) as u32
}

/// Cells of the shift-register array serving one window
/// (`height × sra_columns`).
pub fn sra_cells(w: &Window) -> u32 {
    w.height * sra_columns(w)
}

/// Words per SRAM macro of a line buffer coalescing `rows_per_block`
/// rows at frame width `width` (power of two, as the macros are sized).
pub(crate) fn macro_depth(rows_per_block: u32, width: u32) -> u64 {
    (rows_per_block as u64 * width as u64).next_power_of_two()
}

fn scalar(name: &str, width: u32) -> Net {
    Net {
        name: name.to_string(),
        width,
        signed: false,
        array: None,
        is_reg: false,
        port: None,
    }
}

fn port(name: &str, dir: Dir, width: u32, signed: bool) -> Net {
    Net {
        name: name.to_string(),
        width,
        signed,
        array: None,
        is_reg: false,
        port: Some(dir),
    }
}

/// Builds the behavioral SRAM primitive modules (single- and dual-port).
fn sram_primitive(rw_ports: u32) -> Module {
    let (name, mut nets) = if rw_ports >= 2 {
        (
            "imagen_sram_2p",
            vec![
                port("clk", Dir::Input, 1, false),
                port("en_a", Dir::Input, 1, false),
                port("we_a", Dir::Input, 1, false),
                port("addr_a", Dir::Input, 9, false),
                port("wdata_a", Dir::Input, 16, false),
                port("rdata_a", Dir::Output, 16, false),
                port("en_b", Dir::Input, 1, false),
                port("addr_b", Dir::Input, 9, false),
                port("rdata_b", Dir::Output, 16, false),
            ],
        )
    } else {
        (
            "imagen_sram_1p",
            vec![
                port("clk", Dir::Input, 1, false),
                port("en", Dir::Input, 1, false),
                port("we", Dir::Input, 1, false),
                port("addr", Dir::Input, 9, false),
                port("wdata", Dir::Input, 16, false),
                port("rdata", Dir::Output, 16, false),
            ],
        )
    };
    for n in nets.iter_mut() {
        if matches!(n.port, Some(Dir::Output)) {
            n.is_reg = true;
        }
    }
    let mem = Net {
        name: "mem".to_string(),
        width: 16,
        signed: false,
        array: Some(512),
        is_reg: true,
        port: None,
    };
    nets.push(mem);
    let mut items = vec![Item::Register {
        net: "mem".to_string(),
    }];
    if rw_ports >= 2 {
        items.push(Item::Register {
            net: "rdata_a".to_string(),
        });
        items.push(Item::Register {
            net: "rdata_b".to_string(),
        });
    } else {
        items.push(Item::Register {
            net: "rdata".to_string(),
        });
    }
    Module {
        name: name.to_string(),
        kind: ModuleKind::SramPrimitive { rw_ports },
        nets,
        items,
    }
}

/// Builds one stage compute module.
fn stage_module(widths: &BitWidths, name: &str, payload: StagePayload) -> Module {
    let p = widths.pixel_bits;
    let mut nets = vec![
        port("clk", Dir::Input, 1, false),
        port("en", Dir::Input, 1, false),
    ];
    for (slot, w) in payload.windows.iter().enumerate() {
        nets.push(Net {
            name: format!("win{slot}"),
            width: p,
            signed: true,
            array: Some(sra_cells(w)),
            is_reg: false,
            port: Some(Dir::Input),
        });
    }
    nets.push(Net {
        name: "pixel_out".to_string(),
        width: p,
        signed: true,
        array: None,
        is_reg: true,
        port: Some(Dir::Output),
    });
    nets.push(Net {
        name: "result".to_string(),
        width: widths.acc_bits,
        signed: true,
        array: None,
        is_reg: false,
        port: None,
    });
    Module {
        name: format!("stage_{}", sanitize(name)),
        kind: ModuleKind::Stage(payload),
        nets,
        items: vec![
            Item::Assign {
                net: "result".to_string(),
            },
            Item::Register {
                net: "pixel_out".to_string(),
            },
        ],
    }
}

/// Builds one line-buffer module (rotating banks of SRAM blocks plus the
/// bank-select logic).
fn linebuf_module(widths: &BitWidths, stage_name: &str, buf: &NetBuffer, buffer: usize) -> Module {
    let p = widths.pixel_bits;
    let mut nets = vec![
        port("clk", Dir::Input, 1, false),
        port("wen", Dir::Input, 1, false),
        port("wrow", Dir::Input, 32, false),
        port("wcol", Dir::Input, 32, false),
        port("wdata", Dir::Input, p, true),
        port("ren", Dir::Input, 1, false),
        port("rrow", Dir::Input, 32, false),
        port("rcol", Dir::Input, 32, false),
        port("rdata", Dir::Output, p, true),
    ];
    nets.push(scalar("wphys", 32));
    nets.push(scalar("rphys", 32));
    nets.push(scalar("wblk", 32));
    nets.push(scalar("rblk", 32));
    nets.push(scalar("waddr", buf.aw));
    nets.push(scalar("raddr", buf.aw));
    nets.push(Net {
        name: "rdata_blk".to_string(),
        width: p,
        signed: true,
        array: Some(buf.blocks as u32),
        is_reg: false,
        port: None,
    });
    nets.push(Net {
        name: "rblk_q".to_string(),
        width: 32,
        signed: false,
        array: None,
        is_reg: true,
        port: None,
    });
    let mut items: Vec<Item> = ["wphys", "rphys", "wblk", "rblk", "waddr", "raddr"]
        .iter()
        .map(|n| Item::Assign {
            net: (*n).to_string(),
        })
        .collect();
    let prim = if buf.ports >= 2 {
        "imagen_sram_2p"
    } else {
        "imagen_sram_1p"
    };
    for b in 0..buf.blocks as u32 {
        let conns = if buf.ports >= 2 {
            vec![
                ("clk".to_string(), Conn::Net("clk".to_string())),
                (
                    "en_a".to_string(),
                    Conn::Expr(format!("wen && wblk == {b}")),
                ),
                (
                    "we_a".to_string(),
                    Conn::Expr(format!("wen && wblk == {b}")),
                ),
                ("addr_a".to_string(), Conn::Net("waddr".to_string())),
                ("wdata_a".to_string(), Conn::Net("wdata".to_string())),
                ("rdata_a".to_string(), Conn::Open),
                (
                    "en_b".to_string(),
                    Conn::Expr(format!("ren && rblk == {b}")),
                ),
                ("addr_b".to_string(), Conn::Net("raddr".to_string())),
                (
                    "rdata_b".to_string(),
                    Conn::NetIndex("rdata_blk".to_string(), b),
                ),
            ]
        } else {
            vec![
                ("clk".to_string(), Conn::Net("clk".to_string())),
                (
                    "en".to_string(),
                    Conn::Expr(format!("(wen && wblk == {b}) || (ren && rblk == {b})")),
                ),
                ("we".to_string(), Conn::Expr(format!("wen && wblk == {b}"))),
                (
                    "addr".to_string(),
                    Conn::Expr(format!("(wen && wblk == {b}) ? waddr : raddr")),
                ),
                ("wdata".to_string(), Conn::Net("wdata".to_string())),
                (
                    "rdata".to_string(),
                    Conn::NetIndex("rdata_blk".to_string(), b),
                ),
            ]
        };
        items.push(Item::Inst(Instance {
            module: prim.to_string(),
            name: format!("u_blk{b}"),
            conns,
        }));
    }
    items.push(Item::Register {
        net: "rblk_q".to_string(),
    });
    items.push(Item::Assign {
        net: "rdata".to_string(),
    });
    Module {
        name: format!("linebuf_{}", sanitize(stage_name)),
        kind: ModuleKind::LineBuffer(LineBufPayload { buffer }),
        nets,
        items,
    }
}

/// Elaborates a scheduled design into a typed netlist.
///
/// The returned netlist is self-contained: it carries the schedule, the
/// buffer geometry and the kernels, so every downstream consumer
/// (emission, interpretation, verification, resource reporting) works
/// from the netlist alone.
pub fn build_netlist(dag: &Dag, design: &Design, widths: &BitWidths) -> Netlist {
    let geom = design.geometry;
    let p = widths.pixel_bits;
    let frame = geom.pixels();

    // Stage roster with stream assignments.
    let scales = dag.stage_scales();
    let mut stages: Vec<NetStage> = Vec::with_capacity(dag.num_stages());
    let mut in_idx = 0usize;
    for (id, stage) in dag.stages() {
        let input_stream = if stage.is_input() {
            let k = in_idx;
            in_idx += 1;
            Some(k)
        } else {
            None
        };
        let (scale_x, scale_y) = scales[id.index()];
        stages.push(NetStage {
            index: id.index(),
            name: stage.name().to_string(),
            sanitized: sanitize(stage.name()),
            input_stream,
            module: None,
            is_output: stage.is_output(),
            start_cycle: *design.start_cycles.get(id.index()).unwrap_or(&0),
            scale_x,
            scale_y,
        });
    }

    let edges: Vec<NetEdge> = dag
        .edges()
        .map(|(_, e)| NetEdge {
            producer: e.producer().index(),
            consumer: e.consumer().index(),
            slot: e.slot(),
            window: *e.window(),
        })
        .collect();

    let mut modules = vec![sram_primitive(1), sram_primitive(2)];

    // Stage compute modules, in stage order.
    for (id, stage) in dag.stages() {
        if let StageKind::Compute { kernel } = stage.kind() {
            let mut windows = Vec::new();
            for slot in 0..stage.producers().len() {
                let w = dag
                    .producer_edges(id)
                    .find(|(_, e)| e.slot() == slot)
                    .map(|(_, e)| *e.window())
                    .expect("edge per slot");
                windows.push(w);
            }
            stages[id.index()].module = Some(modules.len());
            modules.push(stage_module(
                widths,
                stage.name(),
                StagePayload {
                    stage: id.index(),
                    windows,
                    kernel: kernel.clone(),
                },
            ));
        }
    }

    // Line-buffer modules, in design order.
    let mut buffers: Vec<NetBuffer> = Vec::with_capacity(design.buffers.len());
    for plan in &design.buffers {
        let stage_name = dag
            .stage(StageId::from_index(plan.stage))
            .name()
            .to_string();
        // Buffer rows hold the producer's own grid: W / scale_x words.
        let buf_width = (u64::from(geom.width) / scales[plan.stage].0.max(1)) as u32;
        let depth = macro_depth(plan.rows_per_block, buf_width);
        let buf = NetBuffer {
            stage: plan.stage,
            module: modules.len(),
            phys_rows: plan.phys_rows,
            logical_rows: plan.logical_rows,
            storage_rows: plan.phys_rows.max(plan.logical_rows).max(1),
            blocks: plan.blocks.len().max(1),
            phys_blocks: plan.blocks.len(),
            ports: plan.blocks.first().map(|b| b.ports).unwrap_or(2),
            rows_per_block: plan.rows_per_block,
            blocks_per_row: plan.blocks_per_row,
            block_capacity_bits: plan.blocks.first().map(|b| b.capacity_bits).unwrap_or(0),
            fifo: plan
                .blocks
                .iter()
                .any(|b| b.role == imagen_mem::BlockRole::FifoSegment),
            depth,
            aw: depth.trailing_zeros().max(1),
        };
        let m = linebuf_module(widths, &stage_name, &buf, buffers.len());
        buffers.push(buf);
        modules.push(m);
    }

    let done_cycle = stages
        .iter()
        .filter(|s| s.is_output)
        .map(|s| s.start_cycle + frame)
        .max()
        .unwrap_or(frame);

    // Top module.
    let mut nets = vec![
        port("clk", Dir::Input, 1, false),
        port("rst", Dir::Input, 1, false),
    ];
    let n_inputs = stages.iter().filter(|s| s.input_stream.is_some()).count();
    let n_outputs = stages.iter().filter(|s| s.is_output).count();
    for i in 0..n_inputs {
        nets.push(port(&format!("stream_in_{i}"), Dir::Input, p, true));
    }
    for i in 0..n_outputs {
        nets.push(port(&format!("stream_out_{i}"), Dir::Output, p, true));
    }
    nets.push(port("frame_done", Dir::Output, 1, false));
    nets.push(Net {
        name: "cycle".to_string(),
        width: 64,
        signed: false,
        array: None,
        is_reg: true,
        port: None,
    });
    let mut items = vec![Item::Register {
        net: "cycle".to_string(),
    }];
    for s in &stages {
        let n = &s.sanitized;
        for (name, width) in [
            (format!("en_{n}"), 1),
            (format!("k_{n}"), 64),
            (format!("y_{n}"), 32),
            (format!("x_{n}"), 32),
        ] {
            nets.push(scalar(&name, width));
            items.push(Item::Assign { net: name });
        }
        nets.push(Net {
            name: format!("out_{n}"),
            width: p,
            signed: true,
            array: None,
            is_reg: false,
            port: None,
        });
        if s.input_stream.is_some() {
            items.push(Item::Assign {
                net: format!("out_{n}"),
            });
        }
    }
    for buf in &buffers {
        let pname = &stages[buf.stage].sanitized;
        items.push(Item::Inst(Instance {
            module: format!("linebuf_{pname}"),
            name: format!("u_lb_{pname}"),
            conns: vec![
                ("clk".to_string(), Conn::Net("clk".to_string())),
                ("wen".to_string(), Conn::Net(format!("en_{pname}"))),
                ("wrow".to_string(), Conn::Net(format!("y_{pname}"))),
                ("wcol".to_string(), Conn::Net(format!("x_{pname}"))),
                ("wdata".to_string(), Conn::Net(format!("out_{pname}"))),
                ("ren".to_string(), Conn::Const(1, 1)),
                ("rrow".to_string(), Conn::Net(format!("y_{pname}"))),
                ("rcol".to_string(), Conn::Net(format!("x_{pname}"))),
                ("rdata".to_string(), Conn::Open),
            ],
        }));
    }
    // Shift-register arrays and stage instances.
    for s in &stages {
        let Some(module) = s.module else { continue };
        let n = &s.sanitized;
        let mut conns = vec![
            ("clk".to_string(), Conn::Net("clk".to_string())),
            ("en".to_string(), Conn::Net(format!("en_{n}"))),
        ];
        for (eidx, e) in edges.iter().enumerate() {
            if e.consumer != s.index {
                continue;
            }
            let sra = format!("sra_{n}_{}", e.slot);
            nets.push(Net {
                name: sra.clone(),
                width: p,
                signed: true,
                array: Some(sra_cells(&e.window)),
                is_reg: true,
                port: None,
            });
            items.push(Item::WindowLoad {
                sra: sra.clone(),
                edge: eidx,
            });
            conns.push((format!("win{}", e.slot), Conn::Net(sra)));
        }
        conns.push(("pixel_out".to_string(), Conn::Net(format!("out_{n}"))));
        items.push(Item::Inst(Instance {
            module: modules[module].name.clone(),
            name: format!("u_{n}"),
            conns,
        }));
    }
    for (k, s) in stages.iter().filter(|s| s.is_output).enumerate() {
        let _ = s;
        items.push(Item::Assign {
            net: format!("stream_out_{k}"),
        });
    }
    items.push(Item::Assign {
        net: "frame_done".to_string(),
    });
    let top = modules.len();
    modules.push(Module {
        name: format!("imagen_top_{}", sanitize(dag.name())),
        kind: ModuleKind::Top,
        nets,
        items,
    });

    Netlist {
        name: dag.name().to_string(),
        sanitized: sanitize(dag.name()),
        style: design.style,
        geometry: geom,
        widths: *widths,
        stages,
        edges,
        buffers,
        modules,
        top,
        frame,
        done_cycle,
        gating: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagen_mem::{DesignStyle, ImageGeometry, MemBackend, MemorySpec};
    use imagen_schedule::{plan_design, ScheduleOptions};

    fn plan() -> (Dag, Design) {
        let mut dag = Dag::new("nl");
        let k0 = dag.add_input("K0");
        let k1 = dag
            .add_stage(
                "K1",
                &[k0],
                Expr::sum((0..9).map(|i| Expr::tap(0, i % 3 - 1, i / 3 - 1))),
            )
            .unwrap();
        dag.mark_output(k1);
        let geom = ImageGeometry {
            width: 16,
            height: 12,
            pixel_bits: 16,
        };
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 512 }, 2);
        let p = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        (p.dag, p.design)
    }

    #[test]
    fn builder_shapes_modules() {
        let (dag, design) = plan();
        let net = build_netlist(&dag, &design, &BitWidths::default());
        // 2 primitives + 1 stage module + 1 linebuf + top.
        assert_eq!(net.modules.len(), 5);
        assert_eq!(net.top, 4);
        assert!(matches!(net.top_module().kind, ModuleKind::Top));
        assert_eq!(net.stages.len(), 2);
        assert_eq!(net.edges.len(), 1);
        assert_eq!(net.buffers.len(), 1);
        assert_eq!(net.input_streams(), vec![(0, 0, net.stages[0].start_cycle)]);
        assert_eq!(net.output_streams().len(), 1);
        // The stage module carries its kernel and window.
        let sm = net.module("stage_K1").unwrap();
        match &sm.kind {
            ModuleKind::Stage(p) => {
                assert_eq!(p.windows.len(), 1);
                assert_eq!(p.windows[0].height, 3);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        // Every window edge in the top module has a load path.
        let loads = net
            .top_module()
            .items
            .iter()
            .filter(|i| matches!(i, Item::WindowLoad { .. }))
            .count();
        assert_eq!(loads, net.edges.len());
    }

    #[test]
    fn netbuffer_block_mapping_matches_plan() {
        // The netlist mirror of `BufferPlan::block_of` must agree with
        // the plan's own mapping — the interpreter's activity accounting
        // and the cycle simulator attribute accesses to banks through
        // these two paths.
        let geom = ImageGeometry {
            width: 40,
            height: 30,
            pixel_bits: 16,
        };
        for alg in imagen_algos::Algorithm::all() {
            for coalesce in [false, true] {
                let mut spec = MemorySpec::new(
                    MemBackend::Asic {
                        block_bits: 2 * geom.row_bits(),
                    },
                    2,
                );
                if coalesce {
                    spec = spec.with_coalescing();
                }
                let p = plan_design(
                    &alg.build(),
                    &geom,
                    &spec,
                    ScheduleOptions::default(),
                    DesignStyle::Ours,
                )
                .unwrap();
                let net = build_netlist(&p.dag, &p.design, &BitWidths::default());
                for (bp, nb) in p.design.buffers.iter().zip(&net.buffers) {
                    assert_eq!(bp.stage, nb.stage);
                    for row in 0..2 * geom.height as u64 {
                        for x in [0, geom.width / 2, geom.width - 1] {
                            assert_eq!(
                                nb.block_of(row, x, geom.pixel_bits),
                                bp.block_of(row, x, &geom),
                                "{} coalesce={coalesce} stage={} row={row} x={x}",
                                alg.name(),
                                bp.stage
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn netbuffer_block_mapping_matches_plan_on_split_rows() {
        // Rows wider than a block span several macros (the 1080p
        // regime); the column-segment decode must agree too.
        let mut dag = Dag::new("split");
        let k0 = dag.add_input("K0");
        let k1 = dag
            .add_stage("K1", &[k0], Expr::sum((0..3).map(|i| Expr::tap(0, 0, i))))
            .unwrap();
        dag.mark_output(k1);
        let geom = ImageGeometry {
            width: 120,
            height: 20,
            pixel_bits: 16,
        };
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 1024 }, 2);
        let p = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        let net = build_netlist(&p.dag, &p.design, &BitWidths::default());
        let bp = &p.design.buffers[0];
        let nb = &net.buffers[0];
        assert!(nb.blocks_per_row > 1, "rows must split for this test");
        for row in 0..2 * geom.height as u64 {
            for x in 0..geom.width {
                assert_eq!(
                    nb.block_of(row, x, geom.pixel_bits),
                    bp.block_of(row, x, &geom),
                    "row={row} x={x}"
                );
            }
        }
    }

    #[test]
    fn widths_are_threaded() {
        let (dag, design) = plan();
        let net = build_netlist(&dag, &design, &BitWidths::wide());
        let sm = net.module("stage_K1").unwrap();
        assert_eq!(sm.net("pixel_out").unwrap().width, 64);
        assert_eq!(sm.net("result").unwrap().width, 64);
        let top = net.top_module();
        assert_eq!(top.net("stream_in_0").unwrap().width, 64);
    }
}
