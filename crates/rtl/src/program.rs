//! One-time netlist → flat evaluation program compiler.
//!
//! The reference interpreter ([`crate::interpret_legacy`]) re-walks the
//! netlist graph every cycle: it scans every stage against every edge,
//! recomputes `x`/`y` with `div_euclid`/`rem_euclid` per access, and
//! evaluates kernels by recursing over the [`Expr`] tree behind a fetch
//! closure. [`EvalProgram::compile`] pays all of that once, lowering a
//! [`Netlist`] into a flat program the executor streams through:
//!
//! * **register-tape bytecode** — each kernel tree is linearized into a
//!   [`TapeOp`] sequence evaluated into a dense register file, with
//!   common subexpressions hash-consed away and tap operands resolved to
//!   `(window row, column offset)` pairs at compile time;
//! * **stage-at-a-time streaming** — the compiler proves from the ILP
//!   schedule that every window load happens at least one cycle after
//!   the producer wrote the word and before the rotating buffer reuses
//!   its slot (the `streamable` margins). Under that proof the lockstep
//!   cycle loop is unnecessary: stages execute one *whole frame* at a
//!   time in start-cycle order, each tap reading the producer's dense
//!   output image directly — `image[min(y+lag+j, h-1)][max(x+dx, 0)]`
//!   is exactly the value the shift-register array would have delivered,
//!   with clock-gated read ports zeroing the affected load columns. The
//!   kernel tape then runs op-by-op over column tiles, so each bytecode
//!   instruction becomes a tight (auto-vectorizable) loop instead of a
//!   per-pixel dispatch;
//! * **closed-form + single-pass activity** — every trace quantity is
//!   either precomputed at compile time (enable duty, gated-off cycles,
//!   shift/write totals, SRAM access totals) or recovered from the dense
//!   images in one linear pass: output-register toggles walk the output
//!   stream, shift-register toggles use the delay-line identity (each
//!   consecutive-load toggle re-appears once per column as it shifts
//!   through, so the per-cycle sum telescopes into a windowed sum over
//!   the load stream), and per-block SRAM read/write/peak counters come
//!   from an event sweep over spans where every participant's row,
//!   bank segment and gate state are constant;
//! * **multirate strided stepping** — pipelines with `downsample`/
//!   `upsample` stages keep the frame-at-a-time streaming order but run
//!   each stage over its *own* grid (`W/cx × H/cy`), stepping taps
//!   through the producer's grid with the cumulative-scale stride
//!   (`row = min(⌊y_b/pcy⌋ + lag + j, ph-1)`, `col = max(⌊x_b/pcx⌋ +
//!   dx, 0)`), which is exactly the value the rate-scheduled SRA holds
//!   at the stage's compute-enable cycles. The streaming-margin proof
//!   generalizes with rows re-measured in producer row periods. This
//!   path evaluates the same tape scalarly; the vectorized tile path
//!   and its closed forms are reserved for the (common) rate-1 case
//!   and are byte-for-byte unchanged by the multirate extension.
//! * **pathology fallback** — a netlist whose schedule violates the
//!   streaming margins (never produced by the planner, but representable)
//!   keeps a copy of itself and routes execution through the reference
//!   interpreter, trading speed for unconditional exactness. Multirate
//!   netlists also keep the copy: their *traced* runs route through the
//!   rate-aware reference interpreter (the activity passes assume the
//!   one-pixel-per-cycle raster), while plain runs use the strided
//!   scalar path above.
//!
//! The program is *semantics-preserving by construction and pinned by
//! test*: [`crate::interpret`] routes through it, and the differential
//! suite (`crates/rtl/tests/program_differential.rs`) checks report,
//! images and the full [`ActivityTrace`] field-for-field against the
//! legacy path on the whole algorithm corpus at both width regimes,
//! gated and ungated.

use crate::activity::ActivityTrace;
use crate::interp::{trunc, InterpError, InterpReport};
use crate::netlist::{sra_columns, ModuleKind, NetBuffer, Netlist};
use imagen_ir::{BinOp, CmpOp, Expr};
use imagen_sim::Image;
use std::collections::HashMap;

/// Column-tile width of the vectorized tape evaluator: one bytecode
/// dispatch covers this many raster columns, and the per-op inner loops
/// stay resident in L1 (`max_regs × TILE × 8` bytes).
const TILE: usize = 64;

/// One bytecode instruction of a linearized kernel. Instruction `i`
/// writes register `i`; operands name earlier registers. Every result is
/// truncated to the accumulator width, mirroring [`crate::eval_acc`]'s
/// truncate-after-every-node datapath semantics exactly.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum TapeOp {
    /// Integer literal.
    Const(i64),
    /// Stencil tap: window row `vrow` (stage-local virtual-row index) at
    /// column `x + dx`, clamped to the left edge.
    Load {
        /// Stage-local virtual-row index (edge window rows, flattened).
        vrow: u32,
        /// Horizontal tap offset (`<= 0` after window normalization).
        dx: i32,
    },
    /// Wrapping negation.
    Neg(u32),
    /// Wrapping absolute value.
    Abs(u32),
    /// Binary arithmetic with the interpreter's pinned semantics
    /// (div-by-zero → 0, Verilog shift behaviour).
    Bin(BinOp, u32, u32),
    /// Three-way wrapping sum — fusion of two single-use `Add` nodes
    /// (wrapping addition is associative, and the fused-away
    /// intermediate was not demanded exact, so the value is unchanged).
    Add3(u32, u32, u32),
    /// Four-way wrapping sum (see [`TapeOp::Add3`]).
    Add4(u32, u32, u32, u32),
    /// Comparison producing 0 or 1.
    Cmp(CmpOp, u32, u32),
    /// `if c != 0 { t } else { o }` — both arms are evaluated eagerly,
    /// which is value-identical because every operation is pure and
    /// total.
    Select(u32, u32, u32),
    /// `clamp(v, lo, hi)` with the `lo > hi → lo` convention.
    Clamp(u32, u32, u32),
}

impl TapeOp {
    /// Calls `f` with each operand register.
    fn for_each_operand(&self, f: &mut impl FnMut(u32)) {
        match *self {
            TapeOp::Const(_) | TapeOp::Load { .. } => {}
            TapeOp::Neg(a) | TapeOp::Abs(a) => f(a),
            TapeOp::Bin(_, a, b) | TapeOp::Cmp(_, a, b) => {
                f(a);
                f(b);
            }
            TapeOp::Add3(a, b, c) | TapeOp::Select(a, b, c) | TapeOp::Clamp(a, b, c) => {
                f(a);
                f(b);
                f(c);
            }
            TapeOp::Add4(a, b, c, d) => {
                f(a);
                f(b);
                f(c);
                f(d);
            }
        }
    }

    /// Rewrites each operand register through `remap`.
    fn remap_operands(&mut self, remap: &[u32]) {
        match self {
            TapeOp::Const(_) | TapeOp::Load { .. } => {}
            TapeOp::Neg(a) | TapeOp::Abs(a) => *a = remap[*a as usize],
            TapeOp::Bin(_, a, b) | TapeOp::Cmp(_, a, b) => {
                *a = remap[*a as usize];
                *b = remap[*b as usize];
            }
            TapeOp::Add3(a, b, c) | TapeOp::Select(a, b, c) | TapeOp::Clamp(a, b, c) => {
                *a = remap[*a as usize];
                *b = remap[*b as usize];
                *c = remap[*c as usize];
            }
            TapeOp::Add4(a, b, c, d) => {
                *a = remap[*a as usize];
                *b = remap[*b as usize];
                *c = remap[*c as usize];
                *d = remap[*d as usize];
            }
        }
    }
}

/// A linearized kernel: evaluate `ops` in order, read `root`.
#[derive(Clone, Debug, Default)]
struct Tape {
    ops: Vec<TapeOp>,
    root: u32,
    /// Per-register "demanded exactness": whether this register must
    /// hold the accumulator-truncated value. Wrapping `Add`/`Sub`/`Mul`,
    /// `Neg` and the shifted operand of `Shl` are ring homomorphisms
    /// modulo `2^acc`, so a register consumed only in such positions can
    /// skip its truncation — the final truncated root is unchanged.
    /// Sign/magnitude-sensitive positions (`Abs`, `Div`, `Min`/`Max`,
    /// `Shr`, shift amounts, comparisons, `Clamp`, select conditions)
    /// demand the exact value, and a `Select` passes its own demand
    /// through to both value arms.
    exact: Vec<bool>,
}

/// Tape construction with hash-consing: structurally identical
/// instructions (same op, same operand registers) share one register.
#[derive(Default)]
struct TapeBuilder {
    ops: Vec<TapeOp>,
    memo: HashMap<TapeOp, u32>,
}

impl TapeBuilder {
    fn push(&mut self, op: TapeOp) -> u32 {
        if let Some(&r) = self.memo.get(&op) {
            return r;
        }
        let r = self.ops.len() as u32;
        self.ops.push(op);
        self.memo.insert(op, r);
        r
    }

    /// Lowers `e`, mapping taps through `tap`.
    fn lower(&mut self, e: &Expr, tap: &impl Fn(usize, i32, i32) -> TapeOp) -> u32 {
        let op = match e {
            Expr::Const(c) => TapeOp::Const(*c),
            Expr::Tap { slot, dx, dy } => tap(*slot, *dx, *dy),
            Expr::Neg(a) => TapeOp::Neg(self.lower(a, tap)),
            Expr::Abs(a) => TapeOp::Abs(self.lower(a, tap)),
            Expr::Bin(op, a, b) => {
                let a = self.lower(a, tap);
                let b = self.lower(b, tap);
                TapeOp::Bin(*op, a, b)
            }
            Expr::Cmp(op, a, b) => {
                let a = self.lower(a, tap);
                let b = self.lower(b, tap);
                TapeOp::Cmp(*op, a, b)
            }
            Expr::Select {
                cond,
                then,
                otherwise,
            } => {
                let c = self.lower(cond, tap);
                let t = self.lower(then, tap);
                let o = self.lower(otherwise, tap);
                TapeOp::Select(c, t, o)
            }
            Expr::Clamp { value, lo, hi } => {
                let v = self.lower(value, tap);
                let lo = self.lower(lo, tap);
                let hi = self.lower(hi, tap);
                TapeOp::Clamp(v, lo, hi)
            }
        };
        self.push(op)
    }

    fn finish(self, root: u32) -> Tape {
        let (ops, root) = fuse_adds(self.ops, root);
        let mut exact = vec![false; ops.len()];
        if let Some(e) = exact.get_mut(root as usize) {
            *e = true;
        }
        // Reverse pass: operands always precede their op, so one sweep
        // settles the Select pass-through inheritance too.
        for i in (0..ops.len()).rev() {
            let need = exact[i];
            let mut demand = |r: u32| exact[r as usize] = true;
            match ops[i] {
                TapeOp::Const(_)
                | TapeOp::Load { .. }
                | TapeOp::Neg(_)
                | TapeOp::Add3(..)
                | TapeOp::Add4(..) => {}
                TapeOp::Abs(a) => demand(a),
                TapeOp::Bin(op, a, b) => match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul => {}
                    BinOp::Shl => demand(b),
                    BinOp::Div | BinOp::Min | BinOp::Max | BinOp::Shr => {
                        demand(a);
                        demand(b);
                    }
                },
                TapeOp::Cmp(_, a, b) => {
                    demand(a);
                    demand(b);
                }
                TapeOp::Select(c, t, o) => {
                    demand(c);
                    if need {
                        demand(t);
                        demand(o);
                    }
                }
                TapeOp::Clamp(v, lo, hi) => {
                    demand(v);
                    demand(lo);
                    demand(hi);
                }
            }
        }
        Tape { ops, root, exact }
    }
}

/// Rewrites chains of single-use `Add` nodes into [`TapeOp::Add3`] /
/// [`TapeOp::Add4`] reductions. A node is absorbed into its consumer
/// when it is an `Add` referenced exactly once, by another `Add`:
/// wrapping addition is associative, the intermediate cannot have been
/// demanded exact (its only consumer is truncation-insensitive and it
/// is not the root), so flattening preserves the value while removing
/// the intermediate's register-file round trip.
fn fuse_adds(ops: Vec<TapeOp>, root: u32) -> (Vec<TapeOp>, u32) {
    let n = ops.len();
    let is_add = |i: u32| matches!(ops[i as usize], TapeOp::Bin(BinOp::Add, _, _));
    let mut uses = vec![0u32; n];
    let mut add_uses = vec![0u32; n];
    for op in ops.iter() {
        let adder = matches!(op, TapeOp::Bin(BinOp::Add, _, _));
        op.for_each_operand(&mut |r| {
            uses[r as usize] += 1;
            if adder {
                add_uses[r as usize] += 1;
            }
        });
    }
    uses[root as usize] += 1;
    let absorbed: Vec<bool> = (0..n as u32)
        .map(|i| is_add(i) && uses[i as usize] == 1 && add_uses[i as usize] == 1)
        .collect();

    let mut out: Vec<TapeOp> = Vec::with_capacity(n);
    let mut remap = vec![u32::MAX; n];
    for i in 0..n {
        if absorbed[i] {
            continue;
        }
        if let TapeOp::Bin(BinOp::Add, a, b) = ops[i] {
            // Flatten the absorbed subtree into a term list (left to
            // right), then reduce it with the widest ops available,
            // accumulating left-to-right for determinism.
            let mut terms: Vec<u32> = Vec::new();
            let mut stack = vec![b, a];
            while let Some(t) = stack.pop() {
                if absorbed[t as usize] {
                    if let TapeOp::Bin(BinOp::Add, x, y) = ops[t as usize] {
                        stack.push(y);
                        stack.push(x);
                    }
                } else {
                    terms.push(remap[t as usize]);
                }
            }
            let mut cur = terms[0];
            let mut k = 1;
            while k < terms.len() {
                let op = match terms.len() - k {
                    rem if rem >= 3 => TapeOp::Add4(cur, terms[k], terms[k + 1], terms[k + 2]),
                    2 => TapeOp::Add3(cur, terms[k], terms[k + 1]),
                    _ => TapeOp::Bin(BinOp::Add, cur, terms[k]),
                };
                k += match op {
                    TapeOp::Add4(..) => 3,
                    TapeOp::Add3(..) => 2,
                    _ => 1,
                };
                out.push(op);
                cur = (out.len() - 1) as u32;
            }
            remap[i] = cur;
        } else {
            let mut op = ops[i];
            op.remap_operands(&remap);
            out.push(op);
            remap[i] = (out.len() - 1) as u32;
        }
    }
    let root = remap[root as usize];
    (out, root)
}

/// Evaluates a tape over exactly [`TILE`] consecutive columns starting
/// at `x0` (rows are padded to a multiple of [`TILE`], so every tile is
/// full). Each op becomes one tight loop with a compile-time trip
/// count, which the optimizer turns into branch- and remainder-free
/// SIMD; `sh` is the truncation shift (`64 - acc`, zero at full width)
/// applied after every demanded-exact node.
fn eval_tile(tape: &Tape, regs: &mut [i64], vrows: &[&[i64]], sh: u32, x0: usize) {
    for (i, op) in tape.ops.iter().enumerate() {
        let (done, rest) = regs.split_at_mut(i * TILE);
        let done = &*done;
        let dst = &mut rest[..TILE];
        // Truncation shift for this register: demanded-exact registers
        // truncate to the accumulator width, the rest stay un-truncated
        // (sound per the [`Tape::exact`] analysis).
        let sh = if tape.exact[i] { sh } else { 0 };
        match *op {
            TapeOp::Const(c) => dst.fill((c << sh) >> sh),
            TapeOp::Load { vrow, dx } => {
                let row = vrows[vrow as usize];
                let off = x0 as i64 + dx as i64;
                // Taps satisfy `dx <= 0` (window normalization), so only
                // the left edge clamps: the first `k` lanes read column
                // 0, the rest shift-copy (`x + dx` stays in range on the
                // right).
                let k = (-off).clamp(0, TILE as i64) as usize;
                let src = &row[(off + k as i64).max(0) as usize..][..TILE - k];
                if sh == 0 {
                    dst[..k].fill(row[0]);
                    dst[k..].copy_from_slice(src);
                } else {
                    dst[..k].fill((row[0] << sh) >> sh);
                    for (d, &s) in dst[k..].iter_mut().zip(src) {
                        *d = (s << sh) >> sh;
                    }
                }
            }
            TapeOp::Neg(a) => {
                let ra = &done[a as usize * TILE..][..TILE];
                for (d, &a) in dst.iter_mut().zip(ra) {
                    *d = (a.wrapping_neg() << sh) >> sh;
                }
            }
            TapeOp::Abs(a) => {
                let ra = &done[a as usize * TILE..][..TILE];
                for (d, &a) in dst.iter_mut().zip(ra) {
                    *d = (a.wrapping_abs() << sh) >> sh;
                }
            }
            TapeOp::Bin(op, a, b) => {
                let ra = &done[a as usize * TILE..][..TILE];
                let rb = &done[b as usize * TILE..][..TILE];
                macro_rules! lanes {
                    ($f:expr) => {
                        if sh == 0 {
                            for l in 0..TILE {
                                dst[l] = $f(ra[l], rb[l]);
                            }
                        } else {
                            for l in 0..TILE {
                                let v: i64 = $f(ra[l], rb[l]);
                                dst[l] = (v << sh) >> sh;
                            }
                        }
                    };
                }
                match op {
                    BinOp::Add => lanes!(i64::wrapping_add),
                    BinOp::Sub => lanes!(i64::wrapping_sub),
                    BinOp::Mul => lanes!(i64::wrapping_mul),
                    BinOp::Min => lanes!(|a: i64, b: i64| a.min(b)),
                    BinOp::Max => lanes!(|a: i64, b: i64| a.max(b)),
                    // Branchless forms of the pinned Verilog shift
                    // semantics so the lanes stay vectorizable:
                    // out-of-range left shifts zero via the 0/1 factor,
                    // out-of-range right shifts saturate the amount at 63
                    // (negative amounts wrap to huge u64s and hit the min).
                    BinOp::Shl => {
                        lanes!(
                            |a: i64, b: i64| a.wrapping_shl(b as u32) * i64::from((b as u64) < 64)
                        )
                    }
                    BinOp::Shr => {
                        lanes!(|a: i64, b: i64| a.wrapping_shr((b as u64).min(63) as u32))
                    }
                    BinOp::Div => {
                        lanes!(|a: i64, b: i64| if b == 0 { 0 } else { a.wrapping_div(b) })
                    }
                }
            }
            TapeOp::Add3(a, b, c) => {
                let ra = &done[a as usize * TILE..][..TILE];
                let rb = &done[b as usize * TILE..][..TILE];
                let rc = &done[c as usize * TILE..][..TILE];
                if sh == 0 {
                    for l in 0..TILE {
                        dst[l] = ra[l].wrapping_add(rb[l]).wrapping_add(rc[l]);
                    }
                } else {
                    for l in 0..TILE {
                        let v = ra[l].wrapping_add(rb[l]).wrapping_add(rc[l]);
                        dst[l] = (v << sh) >> sh;
                    }
                }
            }
            TapeOp::Add4(a, b, c, d) => {
                let ra = &done[a as usize * TILE..][..TILE];
                let rb = &done[b as usize * TILE..][..TILE];
                let rc = &done[c as usize * TILE..][..TILE];
                let rd = &done[d as usize * TILE..][..TILE];
                if sh == 0 {
                    for l in 0..TILE {
                        dst[l] = ra[l]
                            .wrapping_add(rb[l])
                            .wrapping_add(rc[l].wrapping_add(rd[l]));
                    }
                } else {
                    for l in 0..TILE {
                        let v = ra[l]
                            .wrapping_add(rb[l])
                            .wrapping_add(rc[l].wrapping_add(rd[l]));
                        dst[l] = (v << sh) >> sh;
                    }
                }
            }
            TapeOp::Cmp(op, a, b) => {
                let ra = &done[a as usize * TILE..][..TILE];
                let rb = &done[b as usize * TILE..][..TILE];
                // 0/1 survives any truncation width; one monomorphic loop
                // per operator keeps the compare+zext vectorizable.
                macro_rules! cmp_lanes {
                    ($f:expr) => {
                        for l in 0..TILE {
                            dst[l] = i64::from($f(&ra[l], &rb[l]));
                        }
                    };
                }
                match op {
                    CmpOp::Lt => cmp_lanes!(i64::lt),
                    CmpOp::Le => cmp_lanes!(i64::le),
                    CmpOp::Gt => cmp_lanes!(i64::gt),
                    CmpOp::Ge => cmp_lanes!(i64::ge),
                    CmpOp::Eq => cmp_lanes!(i64::eq),
                    CmpOp::Ne => cmp_lanes!(i64::ne),
                }
            }
            TapeOp::Select(c, t, o) => {
                let rc = &done[c as usize * TILE..][..TILE];
                let rt = &done[t as usize * TILE..][..TILE];
                let ro = &done[o as usize * TILE..][..TILE];
                for l in 0..TILE {
                    // Operands are already truncated; select passes one
                    // through unchanged.
                    dst[l] = if rc[l] != 0 { rt[l] } else { ro[l] };
                }
            }
            TapeOp::Clamp(v, lo, hi) => {
                let rv = &done[v as usize * TILE..][..TILE];
                let rl = &done[lo as usize * TILE..][..TILE];
                let rh = &done[hi as usize * TILE..][..TILE];
                for l in 0..TILE {
                    let (v, lo, hi) = (rv[l], rl[l], rh[l]);
                    dst[l] = if lo > hi { lo } else { v.clamp(lo, hi) };
                }
            }
        }
    }
}

/// Evaluates a tape for one pixel, fetching taps through `fetch(vrow,
/// dx)`. Mirrors [`eval_tile`]'s per-op truncation placement exactly
/// (demanded-exact registers truncate; `Cmp`/`Select`/`Clamp` pass
/// already-truncated values through). The multirate executor uses this
/// path: its taps step through the producer grid at a non-unit stride,
/// which the lane-shifted tile loader cannot express.
fn eval_scalar(
    tape: &Tape,
    regs: &mut [i64],
    sh: u32,
    fetch: &mut impl FnMut(u32, i32) -> i64,
) -> i64 {
    for (i, op) in tape.ops.iter().enumerate() {
        let sh = if tape.exact[i] { sh } else { 0 };
        let v = match *op {
            TapeOp::Const(c) => (c << sh) >> sh,
            TapeOp::Load { vrow, dx } => (fetch(vrow, dx) << sh) >> sh,
            TapeOp::Neg(a) => (regs[a as usize].wrapping_neg() << sh) >> sh,
            TapeOp::Abs(a) => (regs[a as usize].wrapping_abs() << sh) >> sh,
            TapeOp::Bin(op, a, b) => {
                let (a, b) = (regs[a as usize], regs[b as usize]);
                let v = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Min => a.min(b),
                    BinOp::Max => a.max(b),
                    BinOp::Shl => a.wrapping_shl(b as u32) * i64::from((b as u64) < 64),
                    BinOp::Shr => a.wrapping_shr((b as u64).min(63) as u32),
                    BinOp::Div => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                };
                (v << sh) >> sh
            }
            TapeOp::Add3(a, b, c) => {
                let v = regs[a as usize]
                    .wrapping_add(regs[b as usize])
                    .wrapping_add(regs[c as usize]);
                (v << sh) >> sh
            }
            TapeOp::Add4(a, b, c, d) => {
                let v = regs[a as usize]
                    .wrapping_add(regs[b as usize])
                    .wrapping_add(regs[c as usize].wrapping_add(regs[d as usize]));
                (v << sh) >> sh
            }
            TapeOp::Cmp(op, a, b) => {
                let (a, b) = (regs[a as usize], regs[b as usize]);
                i64::from(match op {
                    CmpOp::Lt => a < b,
                    CmpOp::Le => a <= b,
                    CmpOp::Gt => a > b,
                    CmpOp::Ge => a >= b,
                    CmpOp::Eq => a == b,
                    CmpOp::Ne => a != b,
                })
            }
            TapeOp::Select(c, t, o) => {
                if regs[c as usize] != 0 {
                    regs[t as usize]
                } else {
                    regs[o as usize]
                }
            }
            TapeOp::Clamp(v, lo, hi) => {
                let (v, lo, hi) = (regs[v as usize], regs[lo as usize], regs[hi as usize]);
                if lo > hi {
                    lo
                } else {
                    v.clamp(lo, hi)
                }
            }
        };
        regs[i] = v;
    }
    regs[tape.root as usize]
}

/// Compiled window-load path of one consumer edge.
#[derive(Clone, Debug)]
struct EdgeProg {
    /// Netlist edge index (trace attribution).
    edge: usize,
    /// Producer's netlist buffer index (gating, trace attribution).
    buf: usize,
    /// Producer's netlist stage index (dense-image source).
    prod_stage: usize,
    /// SRA rows.
    height: usize,
    /// SRA columns.
    width: usize,
    /// Window row lag.
    lag: u32,
    /// First stage-local virtual-row index of this edge's window rows.
    vrow_base: usize,
    /// Read-enable window `[start, end)` of the producer buffer's clock
    /// gate, `None` when ungated.
    gate: Option<(u64, u64)>,
}

/// Compiled form of one pipeline stage.
#[derive(Clone, Debug)]
struct StageProg {
    /// Netlist stage index.
    stage: usize,
    /// ILP start cycle.
    start: u64,
    /// Input-stream index for source stages.
    input: Option<usize>,
    /// Whether the stage owns a compute module (output register).
    has_module: bool,
    /// This stage's consumer edges: a contiguous range of
    /// [`EvalProgram::edges`].
    edges: std::ops::Range<usize>,
    /// Linearized kernel.
    tape: Tape,
    /// Virtual rows consumed by the tape (sum of edge window heights).
    n_vrows: usize,
}

/// Per-buffer metadata plus the closed-form activity quantities
/// precomputed at compile time.
#[derive(Clone, Debug)]
struct BufMeta {
    nb: NetBuffer,
    read_enabled_cycles: u64,
    idle_read_cycles: u64,
    gated_off_cycles: u64,
    /// Columns at which the bank segment changes (only populated when
    /// `blocks_per_row > 1`), used as span cuts by the block sweep.
    seg_cuts: Vec<u64>,
}

/// A [`Netlist`] lowered to a flat evaluation program.
///
/// Compile once with [`EvalProgram::compile`], then execute frames with
/// [`EvalProgram::run`] / [`EvalProgram::run_with_trace`] — both produce
/// bit-identical results to the reference interpreter
/// ([`crate::interpret_legacy`]), at a fraction of the cost. The
/// public entry points [`crate::interpret`] and
/// [`crate::interpret_with_trace`] compile-and-run internally; hold an
/// `EvalProgram` directly to amortize compilation over repeated frames
/// (the DSE measurement loop does).
#[derive(Clone, Debug)]
pub struct EvalProgram {
    w: i64,
    h: i64,
    width_px: u32,
    height_px: u32,
    frame: u64,
    end: u64,
    done_cycle: u64,
    pixel: u32,
    acc: u32,
    geom_pixel_bits: u32,
    n_inputs: usize,
    /// Stages sorted by start cycle (ties by netlist index).
    stages: Vec<StageProg>,
    /// Consumer edges grouped per stage, in sorted-stage order.
    edges: Vec<EdgeProg>,
    /// Netlist-buffer metadata, in netlist buffer order.
    buffers: Vec<BufMeta>,
    /// Start cycle per netlist stage index (block-sweep writer lookup).
    start_of: Vec<u64>,
    n_net_stages: usize,
    n_net_edges: usize,
    /// Output stages in netlist order (slot -> netlist stage index).
    outputs: Vec<usize>,
    max_regs: usize,
    /// Closed-form totals (identical to what the legacy interpreter
    /// counts cycle by cycle).
    sram_reads: u64,
    sram_writes: u64,
    gated_off_cycles: u64,
    /// Cumulative rate scale per netlist stage (`(1, 1)` for rate-1).
    scale_of: Vec<(u64, u64)>,
    /// Whether any stage runs at a non-unit cumulative rate.
    multirate: bool,
    /// Whether the schedule satisfies the streaming margins.
    streamable: bool,
    /// Reference netlist kept when the streaming executor cannot cover
    /// every path: schedules that violate the streaming margins (all
    /// execution falls back to the cycle-accurate interpreter) and
    /// multirate pipelines (only *traced* runs fall back).
    fallback: Option<Box<Netlist>>,
}

/// Total length of `[lo, hi)` clipped against the merged union of
/// `windows` (each `[start, end)`), used for the closed-form idle-read
/// accounting.
fn overlap_with_union(lo: u64, hi: u64, windows: &mut [(u64, u64)]) -> u64 {
    windows.sort_unstable();
    let mut covered = 0u64;
    let mut cursor = lo;
    for &(s, e) in windows.iter() {
        let s = s.max(cursor).min(hi);
        let e = e.min(hi);
        if e > s {
            covered += e - s;
            cursor = e;
        }
    }
    covered
}

impl EvalProgram {
    /// Lowers `net` into a flat evaluation program.
    ///
    /// # Errors
    ///
    /// [`InterpError::MissingBuffer`] when a windowed producer owns no
    /// line buffer (the same structural check the reference interpreter
    /// performs up front).
    pub fn compile(net: &Netlist) -> Result<EvalProgram, InterpError> {
        let _s = imagen_obs::span("program.build");
        let geom = net.geometry;
        let (w, h) = (geom.width as i64, geom.height as i64);
        let frame = net.frame;

        let mut bufidx_of_stage: Vec<Option<usize>> = vec![None; net.stages.len()];
        for (i, b) in net.buffers.iter().enumerate() {
            bufidx_of_stage[b.stage] = Some(i);
        }
        for e in &net.edges {
            if bufidx_of_stage[e.producer].is_none() {
                return Err(InterpError::MissingBuffer { stage: e.producer });
            }
        }

        // Per-buffer gate windows (FIFO chains are dataflow-clocked; the
        // gating pass never targets them — same filter as the legacy
        // path).
        let gates: Vec<Option<(u64, u64)>> = (0..net.buffers.len())
            .map(|i| {
                net.gating
                    .as_ref()
                    .and_then(|g| g.gate_for(i))
                    .filter(|_| !net.buffers[i].fifo)
                    .map(|g| (g.read_start, g.read_end))
            })
            .collect();

        // Stage order: sorted by ILP start cycle, so producers stream
        // before their consumers (the write-lead margin below proves the
        // starts are strictly ordered along every edge).
        let mut order: Vec<usize> = (0..net.stages.len()).collect();
        order.sort_by_key(|&i| (net.stages[i].start_cycle, i));

        let streams = net.input_streams();
        let mut input_of: Vec<Option<usize>> = vec![None; net.stages.len()];
        for (k, stage, _) in &streams {
            input_of[*stage] = Some(*k);
        }

        let outputs: Vec<usize> = net
            .stages
            .iter()
            .filter(|s| s.is_output)
            .map(|s| s.index)
            .collect();

        let end = net
            .stages
            .iter()
            .map(|s| s.start_cycle + frame)
            .max()
            .unwrap_or(frame);

        // Streaming-margin proof: frame-at-a-time execution with direct
        // image reads is exact iff, for every edge, (a) the producer
        // writes each window row at least one cycle before the earliest
        // load of it (write lead — also covers clamp-to-edge reads of
        // the last row, whose loads happen strictly later), and (b) the
        // rotating buffer does not reuse a slot until the load has
        // happened (read-first ties allowed). Both margins are measured
        // in the producer's row period `P_p = pcy·W` (which is `W` for
        // rate-1, reducing to the original formulas exactly); upsample
        // readers re-read a producer row for `P_p - P_c` base cycles
        // past the rate-1 model's last access, hence the extra reuse
        // slack term. Every planner schedule satisfies both; a
        // hand-built netlist that does not falls back to the reference
        // interpreter.
        let scale_of: Vec<(u64, u64)> = net.stages.iter().map(|s| (s.scale_x, s.scale_y)).collect();
        let multirate = scale_of.iter().any(|&s| s != (1, 1));
        let mut streamable = true;
        for e in &net.edges {
            let sc = net.stages[e.consumer].start_cycle as i64;
            let sp = net.stages[e.producer].start_cycle as i64;
            let lag = e.window.lag as i64;
            let height = e.window.height as i64;
            let rows = net.buffers[bufidx_of_stage[e.producer].expect("checked above")].storage_rows
                as i64;
            let pp = scale_of[e.producer].1 as i64 * w;
            let pc = scale_of[e.consumer].1 as i64 * w;
            let write_lead = sc - sp - (lag + height - 1) * pp;
            let reuse = (lag + rows) * pp - (sc - sp) - (pp - pc).max(0);
            if write_lead < 1 || reuse < 0 {
                streamable = false;
            }
        }

        let mut stages = Vec::with_capacity(net.stages.len());
        let mut edges: Vec<EdgeProg> = Vec::with_capacity(net.edges.len());
        let mut max_regs = 0usize;
        let mut sram_reads = 0u64;

        for &si in &order {
            let s = &net.stages[si];
            let first_edge = edges.len();
            // This stage's consumer edges, with slot -> local index for
            // kernel taps.
            let mut slot_local: Vec<usize> = Vec::new();
            let mut n_vrows = 0usize;
            for (eidx, e) in net.edges.iter().enumerate() {
                if e.consumer != si {
                    continue;
                }
                let width = sra_columns(&e.window) as usize;
                let height = e.window.height as usize;
                let bufidx = bufidx_of_stage[e.producer].expect("checked above");
                if slot_local.len() <= e.slot {
                    slot_local.resize(e.slot + 1, usize::MAX);
                }
                slot_local[e.slot] = edges.len() - first_edge;
                let gate = gates[bufidx];
                // Closed-form SRAM read total: `height` words per
                // non-gated *edge-active* cycle of this edge. An edge is
                // active once per consumer-active row (`y % ccy == 0`)
                // at every producer-grid column (`x % pcx == 0`); for a
                // rate-1 edge every active cycle qualifies and the sum
                // collapses to the plain clipped-interval length.
                let ccy = scale_of[si].1;
                let pcx = scale_of[e.producer].0;
                let (astart, aend) = (s.start_cycle, s.start_cycle + frame);
                let (gs, ge) = match gate {
                    Some((gs, ge)) => (gs.max(astart), ge.min(aend)),
                    None => (astart, aend),
                };
                let mut enabled = 0u64;
                let mut y = 0u64;
                while y < geom.height as u64 {
                    let base = astart + y * geom.width as u64;
                    let lo = gs.max(base);
                    let hi = ge.min(base + geom.width as u64);
                    if hi > lo {
                        let (a, b) = (lo - base, hi - base);
                        enabled += b.div_ceil(pcx) - a.div_ceil(pcx);
                    }
                    y += ccy;
                }
                sram_reads += height as u64 * enabled;
                edges.push(EdgeProg {
                    edge: eidx,
                    buf: bufidx,
                    prod_stage: e.producer,
                    height,
                    width,
                    lag: e.window.lag,
                    vrow_base: n_vrows,
                    gate,
                });
                n_vrows += height;
            }
            let edge_range = first_edge..edges.len();

            // Linearize the kernel; taps resolve to (virtual row, dx).
            let kernel = s.module.map(|m| match &net.modules[m].kind {
                ModuleKind::Stage(p) => &p.kernel,
                other => unreachable!("stage module of wrong kind: {other:?}"),
            });
            let tape = match kernel {
                Some(k) => {
                    let mut tb = TapeBuilder::default();
                    let root = tb.lower(k, &|slot, dx, dy| {
                        let le = &edges[edge_range.start + slot_local[slot]];
                        // Same row selection as the legacy fetch closure.
                        let j = (dy as u32).saturating_sub(le.lag) as usize;
                        assert!(j < le.height, "tap dy={dy} reaches outside the edge window");
                        TapeOp::Load {
                            vrow: (le.vrow_base + j) as u32,
                            dx,
                        }
                    });
                    tb.finish(root)
                }
                None => Tape::default(),
            };
            max_regs = max_regs.max(tape.ops.len());

            stages.push(StageProg {
                stage: si,
                start: s.start_cycle,
                input: input_of[si],
                has_module: s.module.is_some(),
                edges: edge_range,
                tape,
                n_vrows,
            });
        }

        // One write per buffered stage per *write-cadence* cycle: a
        // stage at cumulative scale `(cx, cy)` commits `frame/(cx·cy)`
        // words (the full frame for rate-1 stages).
        let sram_writes = net
            .buffers
            .iter()
            .map(|b| {
                let (sx, sy) = scale_of[b.stage];
                frame / (sx * sy)
            })
            .sum();
        let gated_off_cycles: u64 = gates
            .iter()
            .flatten()
            .map(|&(gs, ge)| end - ge.min(end).saturating_sub(gs.min(end)))
            .sum();

        // Per-buffer closed-form read-port duty: enabled cycles are the
        // gate window (whole run when ungated); a cycle is *idle* when
        // the port is enabled but no consumer edge loads — exactly the
        // legacy `consumed` bookkeeping, folded into interval arithmetic.
        let buffers: Vec<BufMeta> = net
            .buffers
            .iter()
            .enumerate()
            .map(|(i, nb)| {
                let track = nb.phys_blocks > 0 && !nb.fifo;
                let (en_lo, en_hi) = match gates[i] {
                    Some((gs, ge)) => (gs.min(end), ge.min(end)),
                    None => (0, end),
                };
                let read_enabled_cycles = en_hi - en_lo;
                let mut consumers: Vec<(u64, u64)> = Vec::new();
                for e in &net.edges {
                    if bufidx_of_stage[e.producer] == Some(i) {
                        let cs = net.stages[e.consumer].start_cycle;
                        consumers.push((cs, cs + frame));
                    }
                }
                let consumed = overlap_with_union(en_lo, en_hi, &mut consumers);
                let mut seg_cuts = Vec::new();
                if nb.blocks_per_row > 1 {
                    let cap = nb.block_capacity_bits.max(1);
                    let mut prev_seg = 0u64;
                    for x in 1..geom.width as u64 {
                        let seg = x * geom.pixel_bits as u64 / cap;
                        if seg != prev_seg {
                            seg_cuts.push(x);
                            prev_seg = seg;
                        }
                    }
                }
                BufMeta {
                    nb: nb.clone(),
                    read_enabled_cycles: if track { read_enabled_cycles } else { 0 },
                    idle_read_cycles: if track {
                        read_enabled_cycles - consumed
                    } else {
                        0
                    },
                    gated_off_cycles: gates[i]
                        .map_or(0, |(gs, ge)| end - ge.min(end).saturating_sub(gs.min(end))),
                    seg_cuts,
                }
            })
            .collect();

        Ok(EvalProgram {
            w,
            h,
            width_px: geom.width,
            height_px: geom.height,
            frame,
            end,
            done_cycle: net.done_cycle,
            pixel: net.widths.pixel_bits,
            acc: net.widths.acc_bits,
            geom_pixel_bits: geom.pixel_bits,
            n_inputs: streams.len(),
            stages,
            edges,
            buffers,
            start_of: net.stages.iter().map(|s| s.start_cycle).collect(),
            n_net_stages: net.stages.len(),
            n_net_edges: net.edges.len(),
            outputs,
            max_regs,
            sram_reads,
            sram_writes,
            gated_off_cycles,
            scale_of,
            multirate,
            streamable,
            fallback: (!streamable || multirate).then(|| Box::new(net.clone())),
        })
    }

    /// Executes one frame without tracing — the fastest path.
    ///
    /// # Errors
    ///
    /// [`InterpError`] on input count/geometry mismatch.
    pub fn run(&self, inputs: &[Image]) -> Result<InterpReport, InterpError> {
        if !self.streamable {
            let net = self.fallback.as_ref().expect("fallback netlist kept");
            return crate::interp::interpret_legacy(net, inputs);
        }
        self.check_inputs(inputs)?;
        if self.multirate {
            return Ok(self.exec_multirate(inputs));
        }
        let mut tr = TraceAcc::empty();
        Ok(self.exec::<false>(inputs, &mut tr))
    }

    /// Executes one frame, additionally collecting an [`ActivityTrace`]
    /// identical to the reference interpreter's.
    ///
    /// # Errors
    ///
    /// See [`EvalProgram::run`].
    pub fn run_with_trace(
        &self,
        inputs: &[Image],
    ) -> Result<(InterpReport, ActivityTrace), InterpError> {
        if !self.streamable || self.multirate {
            let net = self.fallback.as_ref().expect("fallback netlist kept");
            return crate::interp::interpret_with_trace_legacy(net, inputs);
        }
        self.check_inputs(inputs)?;
        let mut tr = TraceAcc::for_program(self);
        let report = self.exec::<true>(inputs, &mut tr);
        let trace = self.assemble_trace(tr);
        Ok((report, trace))
    }

    fn check_inputs(&self, inputs: &[Image]) -> Result<(), InterpError> {
        if self.n_inputs != inputs.len() {
            return Err(InterpError::InputCount {
                expected: self.n_inputs,
                provided: inputs.len(),
            });
        }
        if inputs
            .iter()
            .any(|i| i.width() != self.width_px || i.height() != self.height_px)
        {
            return Err(InterpError::GeometryMismatch);
        }
        Ok(())
    }

    /// Columns of row `y` of a consumer active since `start` whose loads
    /// fall inside the gate window: `[en_lo, en_hi)` (the whole row when
    /// ungated). Loaded values outside it are zero.
    /// Padded row stride of the dense stage images: raster width rounded
    /// up to a whole number of evaluation tiles.
    fn wstride(&self) -> usize {
        (self.w as usize).next_multiple_of(TILE)
    }

    fn gate_cols(&self, gate: Option<(u64, u64)>, start: u64, y: usize) -> (usize, usize) {
        let w = self.w as usize;
        match gate {
            None => (0, w),
            Some((gs, ge)) => {
                let base = start + (y * w) as u64;
                let lo = gs.saturating_sub(base).min(w as u64) as usize;
                let hi = ge.saturating_sub(base).min(w as u64) as usize;
                (lo, hi.max(lo))
            }
        }
    }

    /// The frame-at-a-time executor. Stages stream whole frames in
    /// start-cycle order into dense images; with `TRACED = true` the
    /// activity passes run over those images afterwards.
    fn exec<const TRACED: bool>(&self, inputs: &[Image], tr: &mut TraceAcc) -> InterpReport {
        let pixel = self.pixel;
        let (w, h) = (self.w as usize, self.h as usize);
        // Rows are stored at a stride padded to a whole number of
        // tiles, so every tile evaluation is full-width; the padding
        // lanes hold don't-care values that no in-frame column ever
        // reads back (taps satisfy `dx <= 0`).
        let ws = self.wstride();

        let in_rast: Vec<Vec<i64>> = inputs
            .iter()
            .map(|img| {
                let mut r = vec![0i64; h * ws];
                let mut it = img.raster();
                for y in 0..h {
                    for v in r[y * ws..y * ws + w].iter_mut() {
                        *v = trunc(it.next().unwrap_or(0), pixel);
                    }
                }
                r
            })
            .collect();

        // Dense per-stage output images, indexed by netlist stage.
        let mut images: Vec<Vec<i64>> = vec![Vec::new(); self.n_net_stages];
        // Shared workspaces across stages.
        let mut regs = vec![0i64; self.max_regs * TILE];
        let mut scratch: Vec<Vec<i64>> = Vec::new();

        for st in &self.stages {
            let img = match st.input {
                Some(k) => in_rast[k].clone(),
                None => {
                    let mut out = vec![0i64; h * ws];
                    self.eval_stage(st, &images, &mut out, &mut regs, &mut scratch);
                    out
                }
            };
            if TRACED {
                if st.has_module {
                    // Adjacent-pair form of the toggle chain (vectorizes).
                    let mut tg = 0u64;
                    let mut prev = 0i64;
                    for y in 0..h {
                        let row = &img[y * ws..y * ws + w];
                        tg += toggles(prev, row[0], pixel);
                        tg += row
                            .windows(2)
                            .map(|p| toggles(p[0], p[1], pixel))
                            .sum::<u64>();
                        prev = row[w - 1];
                    }
                    tr.out_toggles[st.stage] = tg;
                }
                for (lei, ep) in self.edges[st.edges.clone()].iter().enumerate() {
                    tr.sra_toggles[st.edges.start + lei] =
                        self.edge_bit_toggles(st.start, ep, &images);
                }
            }
            images[st.stage] = img;
        }

        if TRACED {
            self.block_sweep(tr);
        }
        let output_images = self
            .outputs
            .iter()
            .map(|&stage| {
                let img = &images[stage];
                let mut dense = vec![0i64; self.frame as usize];
                for y in 0..h {
                    dense[y * w..(y + 1) * w].copy_from_slice(&img[y * ws..y * ws + w]);
                }
                (
                    stage,
                    Image::from_raster(self.width_px, self.height_px, dense),
                )
            })
            .collect();

        InterpReport {
            cycles: self.end,
            latency: self.done_cycle,
            output_images,
            sram_reads: self.sram_reads,
            sram_writes: self.sram_writes,
            gated_off_cycles: self.gated_off_cycles,
        }
    }

    /// The multirate strided executor: frame-at-a-time streaming in
    /// start-cycle order, each stage evaluated over its own `W/cx ×
    /// H/cy` grid with taps stepping through the producer's grid at the
    /// cumulative-scale stride. Under the (generalized) streaming
    /// margins the dense producer image at `[min(⌊y_b/pcy⌋ + lag + j,
    /// ph-1)][max(⌊x_b/pcx⌋ + dx, 0)]` is exactly the word the
    /// rate-scheduled SRA holds at the stage's compute-enable cycle;
    /// gate windows are applied per load at the base cycle the load
    /// would occur (`S_c + y_b·W + col·pcx`). Report totals come from
    /// the rate-aware compile-time closed forms.
    fn exec_multirate(&self, inputs: &[Image]) -> InterpReport {
        let pixel = self.pixel;
        let (w, h) = (self.w as u64, self.h as u64);
        let sh = 64 - self.acc.min(64);

        // Dense per-stage images in each stage's own grid, unpadded
        // row-major (the scalar path needs no tile alignment).
        let mut images: Vec<Vec<i64>> = vec![Vec::new(); self.n_net_stages];
        let mut dims: Vec<(u64, u64)> = vec![(0, 0); self.n_net_stages];
        let mut regs = vec![0i64; self.max_regs];

        for st in &self.stages {
            let (ccx, ccy) = self.scale_of[st.stage];
            let (cw, ch) = (w / ccx, h / ccy);
            dims[st.stage] = (cw, ch);
            let mut out = vec![0i64; (cw * ch) as usize];
            match st.input {
                Some(k) => {
                    // Input stages are always rate-1: full-frame copy.
                    let mut it = inputs[k].raster();
                    for v in out.iter_mut() {
                        *v = trunc(it.next().unwrap_or(0), pixel);
                    }
                }
                None => {
                    let edges = &self.edges[st.edges.clone()];
                    for yc in 0..ch {
                        let yb = yc * ccy;
                        for xc in 0..cw {
                            let xb = xc * ccx;
                            let root =
                                eval_scalar(&st.tape, &mut regs, sh, &mut |vrow, dx| {
                                    let vrow = vrow as usize;
                                    let ep = edges
                                        .iter()
                                        .find(|e| {
                                            vrow >= e.vrow_base && vrow < e.vrow_base + e.height
                                        })
                                        .expect("tap vrow maps to an edge window");
                                    let j = (vrow - ep.vrow_base) as u64;
                                    let (pcx, pcy) = self.scale_of[ep.prod_stage];
                                    let (pw, ph) = (w / pcx, h / pcy);
                                    let row = (yb / pcy + ep.lag as u64 + j).min(ph - 1);
                                    let col = ((xb / pcx) as i64 + dx as i64).max(0) as u64;
                                    if let Some((gs, ge)) = ep.gate {
                                        let t = st.start + yb * w + col * pcx;
                                        if t < gs || t >= ge {
                                            return 0;
                                        }
                                    }
                                    images[ep.prod_stage][(row * pw + col) as usize]
                                });
                            out[(yc * cw + xc) as usize] = trunc(root, pixel);
                        }
                    }
                }
            }
            images[st.stage] = out;
        }

        let output_images = self
            .outputs
            .iter()
            .map(|&stage| {
                let (cw, ch) = dims[stage];
                (
                    stage,
                    Image::from_raster(cw as u32, ch as u32, images[stage].clone()),
                )
            })
            .collect();

        InterpReport {
            cycles: self.end,
            latency: self.done_cycle,
            output_images,
            sram_reads: self.sram_reads,
            sram_writes: self.sram_writes,
            gated_off_cycles: self.gated_off_cycles,
        }
    }

    /// Streams one compute stage's whole frame into `out`.
    fn eval_stage(
        &self,
        st: &StageProg,
        images: &[Vec<i64>],
        out: &mut [i64],
        regs: &mut [i64],
        scratch: &mut Vec<Vec<i64>>,
    ) {
        let (w, h) = (self.w as usize, self.h as usize);
        let ws = self.wstride();
        let sh = 64 - self.acc.min(64);
        let pixel = self.pixel;
        if scratch.len() < st.n_vrows {
            scratch.resize(st.n_vrows, Vec::new());
        }

        for y in 0..h {
            // Resolve the virtual SRA rows: producer image rows with the
            // bottom clamp, gate-zeroed per load column. Scratch copies
            // are only made on partially-gated rows (adversarial plans).
            for ep in &self.edges[st.edges.clone()] {
                let (en_lo, en_hi) = self.gate_cols(ep.gate, st.start, y);
                if en_lo == 0 && en_hi == w {
                    continue;
                }
                let prod = &images[ep.prod_stage];
                for j in 0..ep.height {
                    let r = (y + ep.lag as usize + j).min(h - 1);
                    let s = &mut scratch[ep.vrow_base + j];
                    s.clear();
                    s.resize(ws, 0);
                    if en_hi > en_lo {
                        s[en_lo..en_hi].copy_from_slice(&prod[r * ws + en_lo..r * ws + en_hi]);
                    }
                }
            }
            let mut vrows: Vec<&[i64]> = Vec::with_capacity(st.n_vrows);
            for ep in &self.edges[st.edges.clone()] {
                let (en_lo, en_hi) = self.gate_cols(ep.gate, st.start, y);
                let prod = &images[ep.prod_stage];
                for j in 0..ep.height {
                    if en_lo == 0 && en_hi == w {
                        let r = (y + ep.lag as usize + j).min(h - 1);
                        vrows.push(&prod[r * ws..(r + 1) * ws]);
                    } else {
                        vrows.push(&scratch[ep.vrow_base + j][..ws]);
                    }
                }
            }

            let orow = &mut out[y * ws..(y + 1) * ws];
            // The whole row runs through the vectorized tile path; the
            // tile loader handles the left-edge column clamp itself and
            // the padding lanes compute don't-care values.
            for x0 in (0..ws).step_by(TILE) {
                eval_tile(&st.tape, regs, &vrows, sh, x0);
                let root = &regs[st.tape.root as usize * TILE..][..TILE];
                for (o, &v) in orow[x0..x0 + TILE].iter_mut().zip(root) {
                    *o = trunc(v, pixel);
                }
            }
        }
    }

    /// Total shift-register bit toggles of one edge, recovered from the
    /// load stream. The SRA is a delay line: every toggle between two
    /// consecutively loaded values re-appears once per column as it
    /// shifts through, so the legacy per-cycle sum telescopes to
    /// `Σ_u T(u) · min(width, frame - u)` over the load stream `T` (the
    /// tail loads retire before completing the full traversal).
    fn edge_bit_toggles(&self, start: u64, ep: &EdgeProg, images: &[Vec<i64>]) -> u64 {
        let (w, h) = (self.w as usize, self.h as usize);
        let ws = self.wstride();
        let frame = self.frame;
        let width = ep.width as u64;
        let prod = &images[ep.prod_stage];
        let mask = if self.pixel >= 64 {
            u64::MAX
        } else {
            (1u64 << self.pixel) - 1
        };
        let tail_start = frame.saturating_sub(width - 1);
        let mut total = 0u64;
        for j in 0..ep.height {
            let mut prev = 0i64;
            let mut full_sum = 0u64;
            for y in 0..h {
                let r = (y + ep.lag as usize + j).min(h - 1);
                let row = &prod[r * ws..r * ws + w];
                let (en_lo, en_hi) = self.gate_cols(ep.gate, start, y);
                let row_t = (y * w) as u64;
                let xsplit = (tail_start.saturating_sub(row_t) as usize).min(w);
                if en_lo == 0 && en_hi == w && xsplit == w {
                    // Fully enabled, fully ahead of the retirement tail
                    // (the common case: every row but the frame's last
                    // few cycles, ungated or inside the gate window).
                    // The chain against `prev` reduces to adjacent
                    // pairs, which vectorizes.
                    full_sum += (((prev ^ row[0]) as u64) & mask).count_ones() as u64;
                    full_sum += row
                        .windows(2)
                        .map(|p| (((p[0] ^ p[1]) as u64) & mask).count_ones() as u64)
                        .sum::<u64>();
                    prev = row[w - 1];
                } else {
                    for (x, &cell) in row.iter().enumerate() {
                        let v = if x >= en_lo && x < en_hi { cell } else { 0 };
                        let tg = (((prev ^ v) as u64) & mask).count_ones() as u64;
                        prev = v;
                        if x < xsplit {
                            full_sum += tg;
                        } else {
                            total += tg * (frame - (row_t + x as u64));
                        }
                    }
                }
            }
            total += full_sum * width;
        }
        total
    }

    /// Per-block SRAM read/write/peak accounting, reproduced without a
    /// cycle loop: for each buffer, sweep spans of cycles over which
    /// every participant (the writer and each consumer edge) keeps its
    /// raster row, bank segment and gate state — per-cycle counts are
    /// constant across such a span. Reads merge on identical
    /// `(block, row, column)` within a cycle, which across edges can
    /// only collide when two consumers run phase-aligned (start cycles
    /// congruent mod `w`); the sweep merges their window rows first.
    fn block_sweep(&self, tr: &mut TraceAcc) {
        let w = self.w as u64;
        let h = self.h as u64;
        let frame = self.frame;

        // Consumer edges per buffer: (consumer start, lag, height, gate).
        type ReaderEdge = (u64, u32, u64, Option<(u64, u64)>);
        let mut readers: Vec<Vec<ReaderEdge>> = vec![Vec::new(); self.buffers.len()];
        for st in &self.stages {
            for ep in &self.edges[st.edges.clone()] {
                readers[ep.buf].push((st.start, ep.lag, ep.height as u64, ep.gate));
            }
        }

        for (bi, meta) in self.buffers.iter().enumerate() {
            let nb = &meta.nb;
            if nb.phys_blocks == 0 || nb.fifo {
                continue;
            }
            let ws = self.start_of[nb.stage];
            let rd = &readers[bi];
            let t0 = rd.iter().map(|r| r.0).min().unwrap_or(ws).min(ws);
            let tend = rd
                .iter()
                .map(|r| r.0 + frame)
                .max()
                .unwrap_or(ws + frame)
                .max(ws + frame);

            let mut rcnt = vec![0u32; nb.phys_blocks];
            let mut wcnt = vec![0u32; nb.phys_blocks];
            let mut touched: Vec<usize> = Vec::new();
            // Merged unique window rows per phase class: (column phase,
            // rows).
            let mut classes: Vec<(u64, Vec<u64>)> = Vec::new();

            // Position of a participant active since `start` at cycle
            // `t`, shrinking the span end `se` to the next boundary at
            // which its row / segment / liveness changes.
            let span_for = |start: u64, t: u64, se: &mut u64| -> Option<(u64, u64)> {
                if t < start {
                    *se = (*se).min(start);
                    return None;
                }
                if t >= start + frame {
                    return None;
                }
                let k = t - start;
                let (y, x) = (k / w, k % w);
                *se = (*se).min(t + (w - x)).min(start + frame);
                if nb.blocks_per_row > 1 {
                    let cut = meta.seg_cuts.iter().find(|&&c| c > x).copied().unwrap_or(w) - x;
                    *se = (*se).min(t + cut);
                }
                Some((y, x))
            };

            let mut t = t0;
            while t < tend {
                let mut se = tend;
                let writer_at = span_for(ws, t, &mut se);
                let mut live: Vec<(u64, u64, u32, u64)> = Vec::new();
                for &(rs, lag, height, gate) in rd {
                    let pos = span_for(rs, t, &mut se);
                    let mut enabled = true;
                    if let Some((gs, ge)) = gate {
                        if t < gs {
                            se = se.min(gs);
                            enabled = false;
                        } else if t < ge {
                            se = se.min(ge);
                        } else {
                            enabled = false;
                        }
                    }
                    if let Some((y, x)) = pos {
                        if enabled {
                            live.push((x, y, lag, height));
                        }
                    }
                }
                let len = se - t;

                // Per-cycle counts for this span: merged unique rows per
                // phase class, then the write.
                classes.clear();
                for &(x, y, lag, height) in &live {
                    let ci = match classes.iter().position(|(cx, _)| *cx == x) {
                        Some(i) => i,
                        None => {
                            classes.push((x, Vec::new()));
                            classes.len() - 1
                        }
                    };
                    let class = &mut classes[ci].1;
                    for j in 0..height {
                        let r = (y + lag as u64 + j).min(h - 1);
                        if !class.contains(&r) {
                            class.push(r);
                        }
                    }
                }
                for (x, rows) in &classes {
                    for &r in rows {
                        if let Some(b) = nb.block_of(r, *x as u32, self.geom_pixel_bits) {
                            if rcnt[b] == 0 && wcnt[b] == 0 {
                                touched.push(b);
                            }
                            rcnt[b] += 1;
                        }
                    }
                }
                if let Some((y, x)) = writer_at {
                    if let Some(b) = nb.block_of(y, x as u32, self.geom_pixel_bits) {
                        if rcnt[b] == 0 && wcnt[b] == 0 {
                            touched.push(b);
                        }
                        wcnt[b] += 1;
                    }
                }
                for &b in &touched {
                    tr.block_reads[bi][b] += rcnt[b] as u64 * len;
                    tr.block_writes[bi][b] += wcnt[b] as u64 * len;
                    let peak = rcnt[b] + wcnt[b];
                    if peak > tr.block_peaks[bi][b] {
                        tr.block_peaks[bi][b] = peak;
                    }
                    rcnt[b] = 0;
                    wcnt[b] = 0;
                }
                touched.clear();
                t = se;
            }
        }
    }

    /// Builds the final [`ActivityTrace`] from the pass results plus the
    /// compile-time closed forms.
    fn assemble_trace(&self, tr: TraceAcc) -> ActivityTrace {
        let mut trace = ActivityTrace {
            run_cycles: self.end,
            frame: self.frame,
            buffers: Vec::with_capacity(self.buffers.len()),
            stages: vec![Default::default(); self.n_net_stages],
            sras: vec![Default::default(); self.n_net_edges],
        };
        for (bi, meta) in self.buffers.iter().enumerate() {
            let nb = &meta.nb;
            let mut b = crate::activity::BufferActivity {
                stage: nb.stage,
                block_reads: tr.block_reads[bi].clone(),
                block_writes: tr.block_writes[bi].clone(),
                block_peaks: tr.block_peaks[bi].clone(),
                read_enabled_cycles: meta.read_enabled_cycles,
                idle_read_cycles: meta.idle_read_cycles,
                gated_off_cycles: meta.gated_off_cycles,
                fifo: nb.fifo,
            };
            if nb.fifo {
                // FIFO chains: one push and one pop per segment per live
                // cycle — the cycle simulator's synthetic SODA accounting.
                for r in b.block_reads.iter_mut() {
                    *r = self.frame;
                }
                for wr in b.block_writes.iter_mut() {
                    *wr = self.frame;
                }
                for p in b.block_peaks.iter_mut() {
                    *p = 2;
                }
            }
            trace.buffers.push(b);
        }
        for st in &self.stages {
            let sa = &mut trace.stages[st.stage];
            sa.active_cycles = self.frame;
            if st.has_module {
                sa.out_reg_writes = self.frame;
                sa.out_reg_toggles = tr.out_toggles[st.stage];
            }
            for (lei, ep) in self.edges[st.edges.clone()].iter().enumerate() {
                let ea = &mut trace.sras[ep.edge];
                ea.shift_cycles = self.frame;
                ea.cell_writes = (ep.height * ep.width) as u64 * self.frame;
                ea.bit_toggles = tr.sra_toggles[st.edges.start + lei];
            }
        }
        trace
    }
}

/// Toggled bits between two register values at `bits` width.
#[inline]
fn toggles(old: i64, new: i64, bits: u32) -> u64 {
    let mask = if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    (((old ^ new) as u64) & mask).count_ones() as u64
}

/// Per-run activity accumulators for the traced instantiation. The
/// untraced loop carries an empty one that is never touched.
struct TraceAcc {
    /// Bit toggles per edge program (sorted-stage edge order).
    sra_toggles: Vec<u64>,
    /// Output-register toggles per netlist stage.
    out_toggles: Vec<u64>,
    block_reads: Vec<Vec<u64>>,
    block_writes: Vec<Vec<u64>>,
    block_peaks: Vec<Vec<u32>>,
}

impl TraceAcc {
    fn empty() -> TraceAcc {
        TraceAcc {
            sra_toggles: Vec::new(),
            out_toggles: Vec::new(),
            block_reads: Vec::new(),
            block_writes: Vec::new(),
            block_peaks: Vec::new(),
        }
    }

    fn for_program(p: &EvalProgram) -> TraceAcc {
        TraceAcc {
            sra_toggles: vec![0; p.edges.len()],
            out_toggles: vec![0; p.n_net_stages],
            block_reads: p
                .buffers
                .iter()
                .map(|b| vec![0u64; b.nb.phys_blocks])
                .collect(),
            block_writes: p
                .buffers
                .iter()
                .map(|b| vec![0u64; b.nb.phys_blocks])
                .collect(),
            block_peaks: p
                .buffers
                .iter()
                .map(|b| vec![0u32; b.nb.phys_blocks])
                .collect(),
        }
    }
}
