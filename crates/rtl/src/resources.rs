//! Netlist-derived resource accounting.
//!
//! [`report_resources`] walks a [`Netlist`] and inventories what the
//! described hardware is made of: instantiated SRAM macro bits, flip-flop
//! bits (window shift-register arrays, output registers, control
//! counters), and datapath operators from the stage kernels. Unlike the
//! analytic cost models in `imagen-mem` (which price the *allocation*,
//! block-quantum included), this report counts exactly what the netlist
//! instantiates — `imagen-dse` exposes it as an additional costing axis
//! next to the area/power models.

use crate::netlist::{macro_depth, sra_cells, BitWidths, Item, ModuleKind, Netlist};
use imagen_ir::{Dag, StageKind};
use imagen_mem::Design;

/// Inventory of one netlist's hardware resources.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ResourceReport {
    /// Bits of SRAM macro capacity instantiated (`blocks × depth ×
    /// pixel_bits` over all line buffers).
    pub sram_bits: u64,
    /// SRAM macro instances.
    pub sram_blocks: usize,
    /// Flip-flop bits: every register net of every instantiated module
    /// (shift-register arrays, stage output registers, the cycle counter,
    /// bank-select pipeline registers). SRAM primitive contents are
    /// excluded — they are counted in [`ResourceReport::sram_bits`].
    pub flipflop_bits: u64,
    /// Adders/subtractors (incl. neg/abs/min/max/shift units).
    pub adders: usize,
    /// Multipliers.
    pub multipliers: usize,
    /// Dividers.
    pub dividers: usize,
    /// Comparators.
    pub comparators: usize,
    /// Multiplexers.
    pub muxes: usize,
}

impl ResourceReport {
    /// SRAM capacity in KB (convenience for reports).
    pub fn sram_kb(&self) -> f64 {
        self.sram_bits as f64 / 8.0 / 1024.0
    }
}

/// Derives the resource inventory of a netlist.
pub fn report_resources(net: &Netlist) -> ResourceReport {
    let mut r = ResourceReport::default();

    // SRAM: every line buffer instantiates `blocks` macros of
    // depth × pixel words.
    for buf in &net.buffers {
        r.sram_blocks += buf.blocks;
        r.sram_bits += buf.blocks as u64 * buf.depth * net.widths.pixel_bits as u64;
    }

    // Flip-flops and operators: walk each non-primitive module once per
    // instantiation (every stage/linebuf module is instantiated exactly
    // once from the top, and the top itself once).
    for m in &net.modules {
        if matches!(m.kind, ModuleKind::SramPrimitive { .. }) {
            continue;
        }
        for item in &m.items {
            let (Item::Register { net: name } | Item::WindowLoad { sra: name, .. }) = item else {
                continue;
            };
            // WindowLoad drives the same reg net it names; count the net
            // once (Register items and WindowLoad items never alias).
            let n = m.net(name).expect("items drive declared nets");
            r.flipflop_bits += n.width as u64 * n.array.unwrap_or(1) as u64;
        }
        if let ModuleKind::Stage(p) = &m.kind {
            let census = p.kernel.op_census();
            r.adders += census.adds;
            r.multipliers += census.muls;
            r.dividers += census.divs;
            r.comparators += census.cmps;
            r.muxes += census.muxes;
        }
    }
    r
}

/// Derives the same inventory as [`report_resources`] straight from the
/// design, without elaborating a netlist.
///
/// This is the design-space-exploration fast path: a priced DSE point
/// needs the structural costing axis but no modules, nets or name
/// strings, and sweeps evaluate hundreds of points. The two derivations
/// share the sizing helpers (`sra_cells`, `macro_depth`) and are pinned
/// equal by test for every evaluation pipeline in both port
/// configurations.
pub fn report_resources_for(dag: &Dag, design: &Design, widths: &BitWidths) -> ResourceReport {
    let pixel = widths.pixel_bits as u64;
    let mut r = ResourceReport::default();

    for plan in &design.buffers {
        let blocks = plan.blocks.len().max(1);
        let depth = macro_depth(plan.rows_per_block, design.geometry.width);
        r.sram_blocks += blocks;
        r.sram_bits += blocks as u64 * depth * pixel;
        // Each line-buffer module pipelines its bank select (rblk_q).
        r.flipflop_bits += 32;
    }
    // The top module's cycle counter.
    r.flipflop_bits += 64;
    for (_, stage) in dag.stages() {
        if let StageKind::Compute { kernel } = stage.kind() {
            // The stage output register.
            r.flipflop_bits += pixel;
            let census = kernel.op_census();
            r.adders += census.adds;
            r.multipliers += census.muls;
            r.dividers += census.divs;
            r.comparators += census.cmps;
            r.muxes += census.muxes;
        }
    }
    for (_, e) in dag.edges() {
        // One window shift-register array per edge.
        r.flipflop_bits += sra_cells(e.window()) as u64 * pixel;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{build_netlist, BitWidths};
    use imagen_ir::{BinOp, Dag, Expr};
    use imagen_mem::{DesignStyle, ImageGeometry, MemBackend, MemorySpec};
    use imagen_schedule::{plan_design, ScheduleOptions};

    #[test]
    fn counts_srams_ffs_and_ops() {
        let mut dag = Dag::new("res");
        let k0 = dag.add_input("K0");
        let k1 = dag
            .add_stage(
                "K1",
                &[k0],
                Expr::bin(
                    BinOp::Mul,
                    Expr::sum((0..3).map(|i| Expr::tap(0, 0, i))),
                    Expr::Const(3),
                ),
            )
            .unwrap();
        dag.mark_output(k1);
        let geom = ImageGeometry {
            width: 16,
            height: 12,
            pixel_bits: 16,
        };
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 512 }, 2);
        let p = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        let net = build_netlist(&p.dag, &p.design, &BitWidths::default());
        let r = report_resources(&net);
        assert_eq!(r.sram_blocks, net.buffers.iter().map(|b| b.blocks).sum());
        assert!(r.sram_bits > 0);
        assert!(r.sram_kb() > 0.0);
        // 3x1 window SRA (3 cells x 16b) + pixel_out (16) + cycle (64) +
        // rblk_q per linebuf (32 each) at minimum.
        assert!(r.flipflop_bits >= 3 * 16 + 16 + 64 + 32);
        assert_eq!(r.multipliers, 1);
        assert_eq!(r.adders, 2);
        assert_eq!(r.dividers, 0);
    }

    #[test]
    fn fast_path_matches_netlist_derivation() {
        // The DSE fast path and the netlist walk must agree bit for bit,
        // for every evaluation pipeline, both port styles, both width
        // regimes.
        let geom = ImageGeometry {
            width: 40,
            height: 30,
            pixel_bits: 16,
        };
        for alg in imagen_algos::Algorithm::all() {
            for coalesce in [false, true] {
                let mut spec = MemorySpec::new(
                    MemBackend::Asic {
                        block_bits: 2 * geom.row_bits(),
                    },
                    2,
                );
                if coalesce {
                    spec = spec.with_coalescing();
                }
                let p = plan_design(
                    &alg.build(),
                    &geom,
                    &spec,
                    ScheduleOptions::default(),
                    DesignStyle::Ours,
                )
                .unwrap();
                for widths in [BitWidths::default(), BitWidths::wide()] {
                    let fast = report_resources_for(&p.dag, &p.design, &widths);
                    let full = report_resources(&build_netlist(&p.dag, &p.design, &widths));
                    assert_eq!(fast, full, "{} coalesce={coalesce}", alg.name());
                }
            }
        }
    }

    #[test]
    fn ffs_scale_with_widths() {
        let mut dag = Dag::new("res2");
        let k0 = dag.add_input("K0");
        let k1 = dag
            .add_stage("K1", &[k0], Expr::sum((0..3).map(|i| Expr::tap(0, 0, i))))
            .unwrap();
        dag.mark_output(k1);
        let geom = ImageGeometry {
            width: 16,
            height: 12,
            pixel_bits: 16,
        };
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 512 }, 2);
        let p = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        let narrow = report_resources(&build_netlist(&p.dag, &p.design, &BitWidths::default()));
        let wide = report_resources(&build_netlist(&p.dag, &p.design, &BitWidths::wide()));
        assert!(wide.flipflop_bits > narrow.flipflop_bits);
        assert!(wide.sram_bits > narrow.sram_bits);
    }
}
