//! Self-checking Verilog testbench generation.
//!
//! For hand-off to a real simulation/synthesis flow, [`generate_testbench`]
//! emits a testbench that streams a frame into the generated top module,
//! captures the output stream at the scheduled cycles, and compares it
//! against golden values computed by `imagen-sim`'s executor — the same
//! bit-exact reference the Rust cycle simulator checks against, so a
//! Verilog simulator run closes the loop on the actual RTL.

use imagen_ir::{Dag, StageKind};
use imagen_mem::Design;
use std::fmt::Write as _;

use crate::gen::PIXEL_BITS;

/// Inputs to testbench generation: one flattened pixel stream per input
/// stage and the expected output stream per output stage (raster order),
/// as produced by the golden executor.
#[derive(Clone, Debug, Default)]
pub struct TestVectors {
    /// One `width*height`-length pixel vector per input stage, in stage
    /// order.
    pub inputs: Vec<Vec<i64>>,
    /// One expected pixel vector per output stage, in stage order.
    pub outputs: Vec<Vec<i64>>,
}

/// Emits a self-checking testbench module `imagen_tb` for the design.
///
/// The testbench feeds each input stream starting at its stage's start
/// cycle, samples each output stream over its scheduled window, compares
/// against the expected vectors, and finishes with a pass/fail banner
/// (`IMAGEN TB PASS` / `IMAGEN TB FAIL`).
pub fn generate_testbench(dag: &Dag, design: &Design, vectors: &TestVectors) -> String {
    let geom = design.geometry;
    let frame = geom.pixels();
    let mut v = String::new();
    let top = format!(
        "imagen_top_{}",
        dag.name()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect::<String>()
    );

    let inputs: Vec<usize> = dag
        .stages()
        .filter(|(_, s)| s.is_input())
        .map(|(id, _)| id.index())
        .collect();
    let outputs: Vec<usize> = dag
        .stages()
        .filter(|(_, s)| matches!(s.kind(), StageKind::Compute { .. }) && s.is_output())
        .map(|(id, _)| id.index())
        .collect();

    let _ = writeln!(v, "// Self-checking testbench for `{top}`.");
    let _ = writeln!(v, "`timescale 1ns/1ps");
    let _ = writeln!(v, "module imagen_tb;");
    let _ = writeln!(v, "    reg clk = 1'b0;");
    let _ = writeln!(v, "    reg rst = 1'b1;");
    let _ = writeln!(v, "    always #5 clk = ~clk;");
    let _ = writeln!(v, "    reg [63:0] cycle = 64'd0;");
    let _ = writeln!(v, "    integer errors = 0;");

    for (i, stage) in inputs.iter().enumerate() {
        let s = design.start_cycles[*stage];
        let _ = writeln!(
            v,
            "    reg signed [{w}:0] in_mem_{i} [0:{n}];",
            w = PIXEL_BITS - 1,
            n = frame - 1
        );
        let _ = writeln!(v, "    wire signed [{}:0] stream_in_{i} =", PIXEL_BITS - 1);
        let _ = writeln!(
            v,
            "        (cycle >= 64'd{s} && cycle < 64'd{e}) ? in_mem_{i}[cycle - 64'd{s}] : {p}'sd0;",
            e = s + frame,
            p = PIXEL_BITS
        );
    }
    for (i, stage) in outputs.iter().enumerate() {
        let _ = writeln!(
            v,
            "    reg signed [{w}:0] exp_mem_{i} [0:{n}];",
            w = PIXEL_BITS - 1,
            n = frame - 1
        );
        let _ = writeln!(v, "    wire signed [{}:0] stream_out_{i};", PIXEL_BITS - 1);
        let _ = stage;
    }

    // DUT instance.
    let mut conns = String::new();
    for i in 0..inputs.len() {
        let _ = write!(conns, ".stream_in_{i}(stream_in_{i}), ");
    }
    for i in 0..outputs.len() {
        let _ = write!(conns, ".stream_out_{i}(stream_out_{i}), ");
    }
    let _ = writeln!(v, "    wire frame_done;");
    let _ = writeln!(
        v,
        "    {top} dut (.clk(clk), .rst(rst), {conns}.frame_done(frame_done));"
    );

    // Memories initialized from literals (self-contained, no $readmemh
    // file dependencies).
    let _ = writeln!(v, "    integer i;");
    let _ = writeln!(v, "    initial begin");
    for (i, data) in vectors.inputs.iter().enumerate() {
        for (k, px) in data.iter().enumerate() {
            let _ = writeln!(v, "        in_mem_{i}[{k}] = {px};");
        }
    }
    for (i, data) in vectors.outputs.iter().enumerate() {
        for (k, px) in data.iter().enumerate() {
            let _ = writeln!(v, "        exp_mem_{i}[{k}] = {px};");
        }
    }
    let _ = writeln!(v, "        @(negedge clk); rst = 1'b0;");
    let _ = writeln!(v, "    end");

    // Cycle counter and output checking at each output's scheduled window
    // (one extra cycle of pipeline latency through the stage register).
    let _ = writeln!(v, "    always @(posedge clk) begin");
    let _ = writeln!(v, "        if (!rst) cycle <= cycle + 64'd1;");
    for (i, stage) in outputs.iter().enumerate() {
        let s = design.start_cycles[*stage];
        let _ = writeln!(
            v,
            "        if (cycle >= 64'd{s} && cycle < 64'd{e}) begin",
            e = s + frame
        );
        let _ = writeln!(
            v,
            "            if (stream_out_{i} !== exp_mem_{i}[cycle - 64'd{s}]) begin"
        );
        let _ = writeln!(
            v,
            "                errors = errors + 1;\n                $display(\"MISMATCH out{i} k=%0d got=%0d want=%0d\", cycle - 64'd{s}, stream_out_{i}, exp_mem_{i}[cycle - 64'd{s}]);"
        );
        let _ = writeln!(v, "            end");
        let _ = writeln!(v, "        end");
    }
    let done = design
        .start_cycles
        .iter()
        .zip(dag.stages())
        .filter(|(_, (_, s))| s.is_output())
        .map(|(&s, _)| s + frame)
        .max()
        .unwrap_or(frame);
    let _ = writeln!(v, "        if (cycle > 64'd{}) begin", done + 4);
    let _ = writeln!(
        v,
        "            if (errors == 0) $display(\"IMAGEN TB PASS\");\n            else $display(\"IMAGEN TB FAIL (%0d mismatches)\", errors);"
    );
    let _ = writeln!(v, "            $finish;");
    let _ = writeln!(v, "        end");
    let _ = writeln!(v, "    end");
    let _ = writeln!(v, "endmodule");
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_structure;
    use imagen_mem::{DesignStyle, ImageGeometry, MemBackend, MemorySpec};
    use imagen_schedule::{plan_design, ScheduleOptions};

    fn tiny_plan() -> (imagen_ir::Dag, imagen_mem::Design) {
        let mut dag = imagen_ir::Dag::new("tb");
        let k0 = dag.add_input("K0");
        let k1 = dag
            .add_stage(
                "K1",
                &[k0],
                imagen_ir::Expr::sum((0..3).map(|i| imagen_ir::Expr::tap(0, 0, i))),
            )
            .unwrap();
        dag.mark_output(k1);
        let geom = ImageGeometry {
            width: 6,
            height: 4,
            pixel_bits: 16,
        };
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 256 }, 2);
        let p = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        (p.dag, p.design)
    }

    #[test]
    fn testbench_is_well_formed() {
        let (dag, design) = tiny_plan();
        let frame = design.geometry.pixels() as usize;
        let vectors = TestVectors {
            inputs: vec![(0..frame as i64).collect()],
            outputs: vec![vec![0; frame]],
        };
        let tb = generate_testbench(&dag, &design, &vectors);
        assert!(tb.contains("module imagen_tb"));
        assert!(tb.contains("imagen_top_tb dut"));
        assert!(tb.contains("IMAGEN TB PASS"));
        assert!(tb.contains("$finish"));
        // Structurally verifiable together with the DUT netlist.
        let full = format!("{}\n{}", crate::generate_verilog(&dag, &design), tb);
        // The tb module instantiates the top; extend the verifier's view
        // by checking balanced structure of the combined file.
        let summary = verify_structure(&full).unwrap();
        assert!(summary.modules >= 4);
    }

    #[test]
    fn vectors_embedded_per_stream() {
        let (dag, design) = tiny_plan();
        let frame = design.geometry.pixels() as usize;
        let vectors = TestVectors {
            inputs: vec![(100..100 + frame as i64).collect()],
            outputs: vec![vec![7; frame]],
        };
        let tb = generate_testbench(&dag, &design, &vectors);
        assert!(tb.contains("in_mem_0[0] = 100;"));
        assert!(tb.contains(&format!("in_mem_0[{}] = {};", frame - 1, 99 + frame)));
        assert!(tb.contains("exp_mem_0[0] = 7;"));
    }
}
