//! Self-checking Verilog testbench generation.
//!
//! For hand-off to a real simulation/synthesis flow,
//! [`generate_testbench`] emits a testbench that streams a frame into the
//! generated top module, captures the output stream at the scheduled
//! cycles, and compares it against golden values computed by
//! `imagen-sim`'s executor — the same bit-exact reference the netlist
//! interpreter and the cycle simulator check against.
//!
//! The generator is wired to the [`Netlist`]: stream names, start cycles
//! and widths come from the netlist's interface, and emission fails
//! rather than referencing a port the top module does not declare.
//! [`TestVectors::from_golden`] derives the stimulus/expectation pair
//! from the golden executor on a seeded pseudo-random frame, so the
//! testbench always embeds a semantically meaningful check.

use crate::netlist::Netlist;
use crate::verify::RtlError;
use imagen_ir::Dag;
use imagen_mem::ImageGeometry;
use imagen_sim::{execute, GoldenError, Image};
use std::fmt::Write as _;

/// Inputs to testbench generation: one flattened pixel stream per input
/// stage and the expected output stream per output stage (raster order),
/// as produced by the golden executor.
#[derive(Clone, Debug, Default)]
pub struct TestVectors {
    /// One `width*height`-length pixel vector per input stage, in stage
    /// order.
    pub inputs: Vec<Vec<i64>>,
    /// One expected pixel vector per output stage, in stage order.
    pub outputs: Vec<Vec<i64>>,
}

/// SplitMix64 step (deterministic stimulus without external crates).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestVectors {
    /// Derives test vectors from the golden executor: every input stream
    /// is a seeded pseudo-random 8-bit frame, every output stream the
    /// executor's bit-exact result.
    ///
    /// # Errors
    ///
    /// [`GoldenError`] when the DAG rejects the generated inputs (cannot
    /// happen for validated DAGs).
    pub fn from_golden(
        dag: &Dag,
        geom: &ImageGeometry,
        seed: u64,
    ) -> Result<TestVectors, GoldenError> {
        let frames: Vec<Image> = dag
            .stages()
            .filter(|(_, s)| s.is_input())
            .enumerate()
            .map(|(i, _)| {
                let mut state = seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F);
                Image::from_fn(geom.width, geom.height, |_, _| {
                    (splitmix(&mut state) & 0xFF) as i64
                })
            })
            .collect();
        let run = execute(dag, &frames)?;
        Ok(TestVectors {
            inputs: frames.iter().map(|img| img.raster().collect()).collect(),
            outputs: run
                .outputs(dag)
                .map(|(_, img)| img.raster().collect())
                .collect(),
        })
    }
}

/// Emits a self-checking testbench module `imagen_tb` for the netlist.
///
/// The testbench feeds each input stream starting at its stage's start
/// cycle, samples each output stream over its scheduled window, compares
/// against the expected vectors, and finishes with a pass/fail banner
/// (`IMAGEN TB PASS` / `IMAGEN TB FAIL`).
///
/// # Errors
///
/// [`RtlError::VectorShape`] when the vectors do not match the netlist's
/// stream interface, [`RtlError::UnknownPort`] if the netlist's top
/// module is missing a stream port the testbench would reference.
pub fn generate_testbench(net: &Netlist, vectors: &TestVectors) -> Result<String, RtlError> {
    let frame = net.frame;
    let pixel = net.widths.pixel_bits;
    let inputs = net.input_streams();
    let outputs = net.output_streams();

    if vectors.inputs.len() != inputs.len() {
        return Err(RtlError::VectorShape {
            what: "inputs",
            expected: inputs.len(),
            found: vectors.inputs.len(),
        });
    }
    if vectors.outputs.len() != outputs.len() {
        return Err(RtlError::VectorShape {
            what: "outputs",
            expected: outputs.len(),
            found: vectors.outputs.len(),
        });
    }
    for data in &vectors.inputs {
        if data.len() != frame as usize {
            return Err(RtlError::VectorShape {
                what: "frame",
                expected: frame as usize,
                found: data.len(),
            });
        }
    }
    // A multirate output stage produces its own grid: `frame/(cx·cy)`
    // pixels (the full frame for rate-1 stages).
    for ((_, stage, _), data) in outputs.iter().zip(&vectors.outputs) {
        let st = &net.stages[*stage];
        let want = (frame / (st.scale_x * st.scale_y)) as usize;
        if data.len() != want {
            return Err(RtlError::VectorShape {
                what: "frame",
                expected: want,
                found: data.len(),
            });
        }
    }
    // The testbench may only reference ports the top module declares.
    let top = net.top_module();
    for name in inputs
        .iter()
        .map(|(i, _, _)| format!("stream_in_{i}"))
        .chain(outputs.iter().map(|(i, _, _)| format!("stream_out_{i}")))
        .chain(["frame_done".to_string()])
    {
        if top.net(&name).map(|n| n.port.is_none()).unwrap_or(true) {
            return Err(RtlError::UnknownPort {
                instance: "dut".to_string(),
                module: top.name.clone(),
                port: name,
            });
        }
    }

    let mut v = String::new();
    let top_name = &top.name;
    let _ = writeln!(v, "// Self-checking testbench for `{top_name}`.");
    let _ = writeln!(v, "`timescale 1ns/1ps");
    let _ = writeln!(v, "module imagen_tb;");
    let _ = writeln!(v, "    reg clk = 1'b0;");
    let _ = writeln!(v, "    reg rst = 1'b1;");
    let _ = writeln!(v, "    always #5 clk = ~clk;");
    let _ = writeln!(v, "    reg [63:0] cycle = 64'd0;");
    let _ = writeln!(v, "    integer errors = 0;");

    for (i, _, s) in &inputs {
        let _ = writeln!(
            v,
            "    reg signed [{w}:0] in_mem_{i} [0:{n}];",
            w = pixel - 1,
            n = frame - 1
        );
        let _ = writeln!(v, "    wire signed [{}:0] stream_in_{i} =", pixel - 1);
        let _ = writeln!(
            v,
            "        (cycle >= 64'd{s} && cycle < 64'd{e}) ? in_mem_{i}[cycle - 64'd{s}] : {p}'sd0;",
            e = s + frame,
            p = pixel
        );
    }
    for (i, stage, _) in &outputs {
        let st = &net.stages[*stage];
        let _ = writeln!(
            v,
            "    reg signed [{w}:0] exp_mem_{i} [0:{n}];",
            w = pixel - 1,
            n = frame / (st.scale_x * st.scale_y) - 1
        );
        let _ = writeln!(v, "    wire signed [{}:0] stream_out_{i};", pixel - 1);
    }

    // DUT instance.
    let mut conns = String::new();
    for (i, _, _) in &inputs {
        let _ = write!(conns, ".stream_in_{i}(stream_in_{i}), ");
    }
    for (i, _, _) in &outputs {
        let _ = write!(conns, ".stream_out_{i}(stream_out_{i}), ");
    }
    let _ = writeln!(v, "    wire frame_done;");
    let _ = writeln!(
        v,
        "    {top_name} dut (.clk(clk), .rst(rst), {conns}.frame_done(frame_done));"
    );

    // Memories initialized from literals (self-contained, no $readmemh
    // file dependencies).
    let _ = writeln!(v, "    integer i;");
    let _ = writeln!(v, "    initial begin");
    for (i, data) in vectors.inputs.iter().enumerate() {
        for (k, px) in data.iter().enumerate() {
            let _ = writeln!(v, "        in_mem_{i}[{k}] = {px};");
        }
    }
    for (i, data) in vectors.outputs.iter().enumerate() {
        for (k, px) in data.iter().enumerate() {
            let _ = writeln!(v, "        exp_mem_{i}[{k}] = {px};");
        }
    }
    let _ = writeln!(v, "        @(negedge clk); rst = 1'b0;");
    let _ = writeln!(v, "    end");

    // Cycle counter and output checking at each output's scheduled window
    // (one extra cycle of pipeline latency through the stage register).
    let _ = writeln!(v, "    always @(posedge clk) begin");
    let _ = writeln!(v, "        if (!rst) cycle <= cycle + 64'd1;");
    for (i, stage, s) in &outputs {
        let st = &net.stages[*stage];
        // A multirate output only updates on its compute cadence; sample
        // those base cycles and index the stage-grid raster. Rate-1
        // stages emit the seed's every-cycle check verbatim.
        let (guard, idx) = if st.is_multirate() {
            let (cx, cy) = (st.scale_x, st.scale_y);
            let w = u64::from(net.geometry.width);
            (
                format!(
                    "cycle >= 64'd{s} && cycle < 64'd{e} && (((cycle - 64'd{s}) / {w}) % {cy}) == 0 && (((cycle - 64'd{s}) % {w}) % {cx}) == 0",
                    e = s + frame
                ),
                format!(
                    "((((cycle - 64'd{s}) / {w}) / {cy}) * {pw} + (((cycle - 64'd{s}) % {w}) / {cx}))",
                    pw = w / cx
                ),
            )
        } else {
            (
                format!("cycle >= 64'd{s} && cycle < 64'd{e}", e = s + frame),
                format!("cycle - 64'd{s}"),
            )
        };
        let _ = writeln!(v, "        if ({guard}) begin");
        let _ = writeln!(v, "            if (stream_out_{i} !== exp_mem_{i}[{idx}]) begin");
        let _ = writeln!(
            v,
            "                errors = errors + 1;\n                $display(\"MISMATCH out{i} k=%0d got=%0d want=%0d\", {idx}, stream_out_{i}, exp_mem_{i}[{idx}]);"
        );
        let _ = writeln!(v, "            end");
        let _ = writeln!(v, "        end");
    }
    let _ = writeln!(v, "        if (cycle > 64'd{}) begin", net.done_cycle + 4);
    let _ = writeln!(
        v,
        "            if (errors == 0) $display(\"IMAGEN TB PASS\");\n            else $display(\"IMAGEN TB FAIL (%0d mismatches)\", errors);"
    );
    let _ = writeln!(v, "            $finish;");
    let _ = writeln!(v, "        end");
    let _ = writeln!(v, "    end");
    let _ = writeln!(v, "endmodule");
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{build_netlist, BitWidths};
    use imagen_mem::{DesignStyle, MemBackend, MemorySpec};
    use imagen_schedule::{plan_design, ScheduleOptions};

    fn tiny_plan() -> (imagen_ir::Dag, imagen_mem::Design, ImageGeometry) {
        let mut dag = imagen_ir::Dag::new("tb");
        let k0 = dag.add_input("K0");
        let k1 = dag
            .add_stage(
                "K1",
                &[k0],
                imagen_ir::Expr::sum((0..3).map(|i| imagen_ir::Expr::tap(0, 0, i))),
            )
            .unwrap();
        dag.mark_output(k1);
        let geom = ImageGeometry {
            width: 6,
            height: 4,
            pixel_bits: 16,
        };
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 256 }, 2);
        let p = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        (p.dag, p.design, geom)
    }

    #[test]
    fn testbench_is_well_formed() {
        let (dag, design, geom) = tiny_plan();
        let net = build_netlist(&dag, &design, &BitWidths::default());
        let vectors = TestVectors::from_golden(&dag, &geom, 42).unwrap();
        let tb = generate_testbench(&net, &vectors).unwrap();
        assert!(tb.contains("module imagen_tb"));
        assert!(tb.contains("imagen_top_tb dut"));
        assert!(tb.contains("IMAGEN TB PASS"));
        assert!(tb.contains("$finish"));
        // Every referenced stream port exists in the netlist's top module.
        let top = net.top_module();
        for name in ["stream_in_0", "stream_out_0", "frame_done"] {
            assert!(tb.contains(name));
            assert!(top.net(name).is_some_and(|n| n.port.is_some()));
        }
    }

    #[test]
    fn vectors_come_from_the_golden_executor() {
        let (dag, design, geom) = tiny_plan();
        let net = build_netlist(&dag, &design, &BitWidths::default());
        let vectors = TestVectors::from_golden(&dag, &geom, 7).unwrap();
        assert_eq!(vectors.inputs.len(), 1);
        assert_eq!(vectors.outputs.len(), 1);
        assert_eq!(vectors.inputs[0].len(), geom.pixels() as usize);
        // Deterministic in the seed.
        let again = TestVectors::from_golden(&dag, &geom, 7).unwrap();
        assert_eq!(vectors.inputs, again.inputs);
        assert_eq!(vectors.outputs, again.outputs);
        let other = TestVectors::from_golden(&dag, &geom, 8).unwrap();
        assert_ne!(vectors.inputs, other.inputs);
        // The expectation embedded in the testbench is the golden value.
        let tb = generate_testbench(&net, &vectors).unwrap();
        assert!(tb.contains(&format!("in_mem_0[0] = {};", vectors.inputs[0][0])));
        assert!(tb.contains(&format!("exp_mem_0[0] = {};", vectors.outputs[0][0])));
    }

    #[test]
    fn vector_shape_is_enforced() {
        let (dag, design, geom) = tiny_plan();
        let net = build_netlist(&dag, &design, &BitWidths::default());
        let err = generate_testbench(&net, &TestVectors::default()).unwrap_err();
        assert!(matches!(err, RtlError::VectorShape { what: "inputs", .. }));
        let mut vectors = TestVectors::from_golden(&dag, &geom, 1).unwrap();
        vectors.inputs[0].pop();
        let err = generate_testbench(&net, &vectors).unwrap_err();
        assert!(matches!(err, RtlError::VectorShape { what: "frame", .. }));
    }
}
