//! Structural verification of the netlist.
//!
//! No synthesis or Verilog-simulation tool exists in this environment, so
//! the backend is checked at the netlist level — stronger than the
//! textual scan the seed repository used, because the typed structure
//! makes real checks possible:
//!
//! * every instantiated module is defined, and module names are unique;
//! * every instance connection names a real port of the target module,
//!   no port is connected twice, and no *input* port is left open;
//! * connection widths match the port declaration (whole-net and
//!   array-element connections); parameterized SRAM primitives are
//!   checked against their per-instance parameter values — the address
//!   and data widths the owning line buffer instantiates them at —
//!   rather than being exempted;
//! * driver analysis: every net is driven exactly once — by an assign, a
//!   register, a window-load path, an instance output, or (for input
//!   ports) the enclosing module's instantiation — and never more than
//!   once per array element.
//!
//! [`verify_all`] accumulates *every* problem into an [`RtlReport`] (the
//! static analyzer's netlist pass builds on it); [`verify_structure`] is
//! the original first-error `Result` facade, kept so existing callers
//! stay source-compatible.
//!
//! Functional verification is the interpreter's job
//! ([`interpret`](crate::interpret)); this pass guarantees the structure
//! a real elaborator would reject is never emitted.

use crate::netlist::{Conn, Dir, Item, Module, ModuleKind, Net, Netlist};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Structural problems found in a netlist.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RtlError {
    /// Two modules share a name.
    DuplicateModule {
        /// The repeated name.
        name: String,
    },
    /// An instantiated module has no definition.
    UndefinedModule {
        /// The missing module.
        name: String,
        /// Module doing the instantiation.
        within: String,
    },
    /// A net (or port) identifier is declared twice in one module.
    DuplicateSignal {
        /// The repeated signal.
        name: String,
        /// Module containing it.
        within: String,
    },
    /// An instance connects a port the target module does not declare, or
    /// connects it twice.
    UnknownPort {
        /// The instance name.
        instance: String,
        /// The target module.
        module: String,
        /// The offending port.
        port: String,
    },
    /// An instance leaves an input port of the target module unconnected.
    UnconnectedInput {
        /// The instance name.
        instance: String,
        /// The target module.
        module: String,
        /// The open input port.
        port: String,
    },
    /// A connection's net does not match the port's declared shape.
    WidthMismatch {
        /// The instance name.
        instance: String,
        /// The port being connected.
        port: String,
        /// Bits the port declares.
        expected: u32,
        /// Bits the connected net carries.
        found: u32,
    },
    /// A net has no driver.
    UndrivenNet {
        /// The undriven net.
        net: String,
        /// Module containing it.
        within: String,
    },
    /// A net (or one of its array elements) has more than one driver.
    MultipleDrivers {
        /// The multiply-driven net.
        net: String,
        /// Module containing it.
        within: String,
    },
    /// An item or connection references a net the module does not declare.
    UnknownNet {
        /// The missing net.
        net: String,
        /// Module referencing it.
        within: String,
    },
    /// Testbench vectors do not match the netlist's stream interface.
    VectorShape {
        /// What was mis-shaped (`"inputs"`, `"outputs"`, `"frame"`).
        what: &'static str,
        /// Expected count/length.
        expected: usize,
        /// Provided count/length.
        found: usize,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::DuplicateModule { name } => {
                write!(f, "module `{name}` defined more than once")
            }
            RtlError::UndefinedModule { name, within } => {
                write!(
                    f,
                    "module `{name}` instantiated in `{within}` but never defined"
                )
            }
            RtlError::DuplicateSignal { name, within } => {
                write!(f, "signal `{name}` declared twice in module `{within}`")
            }
            RtlError::UnknownPort {
                instance,
                module,
                port,
            } => write!(
                f,
                "instance `{instance}` connects `{port}`, which module `{module}` does not declare (or connects it twice)"
            ),
            RtlError::UnconnectedInput {
                instance,
                module,
                port,
            } => write!(
                f,
                "instance `{instance}` of `{module}` leaves input port `{port}` unconnected"
            ),
            RtlError::WidthMismatch {
                instance,
                port,
                expected,
                found,
            } => write!(
                f,
                "instance `{instance}` port `{port}`: expected {expected} bit(s), connected {found}"
            ),
            RtlError::UndrivenNet { net, within } => {
                write!(f, "net `{net}` in module `{within}` has no driver")
            }
            RtlError::MultipleDrivers { net, within } => {
                write!(f, "net `{net}` in module `{within}` has multiple drivers")
            }
            RtlError::UnknownNet { net, within } => {
                write!(f, "module `{within}` references undeclared net `{net}`")
            }
            RtlError::VectorShape {
                what,
                expected,
                found,
            } => write!(
                f,
                "testbench {what} do not match the netlist: expected {expected}, got {found}"
            ),
        }
    }
}

impl std::error::Error for RtlError {}

/// Summary of a verified netlist.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RtlSummary {
    /// Modules defined.
    pub modules: usize,
    /// Module instantiations.
    pub instances: usize,
    /// SRAM primitive instances.
    pub sram_instances: usize,
    /// Nets declared across all modules (ports included).
    pub nets: usize,
    /// Register (flip-flop) driver sites across all modules.
    pub registers: usize,
}

/// Everything the accumulating structural pass found.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RtlReport {
    /// Inventory of the netlist, counted even when errors are present.
    pub summary: RtlSummary,
    /// Every structural error, in traversal order (modules in netlist
    /// order, items in elaboration order, then driver analysis per net).
    pub errors: Vec<RtlError>,
}

impl RtlReport {
    /// True when no structural error was found.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }

    /// Collapses the report into the historical first-error form.
    ///
    /// # Errors
    ///
    /// The first [`RtlError`] found, if any.
    pub fn into_result(self) -> Result<RtlSummary, RtlError> {
        match self.errors.into_iter().next() {
            None => Ok(self.summary),
            Some(e) => Err(e),
        }
    }
}

/// Driver bookkeeping key: whole net, or one element of an array net.
type DriveKey = (String, Option<u32>);

fn record_drive(
    errors: &mut Vec<RtlError>,
    drives: &mut HashMap<DriveKey, u32>,
    module: &Module,
    net: &str,
    index: Option<u32>,
) {
    if module.net(net).is_none() {
        errors.push(RtlError::UnknownNet {
            net: net.to_string(),
            within: module.name.clone(),
        });
        return;
    }
    *drives.entry((net.to_string(), index)).or_insert(0) += 1;
}

/// Per-instance parameter values of an SRAM primitive instantiation: the
/// widths the `DEPTH`/`WIDTH`/`AW` parameters resolve to inside the
/// owning line buffer.
#[derive(Clone, Copy)]
struct SramParams {
    aw: u32,
    data_bits: u32,
}

impl SramParams {
    /// Resolved bit width of one primitive port under these parameters.
    fn port_bits(&self, port: &Net) -> u32 {
        if port.name.starts_with("addr") {
            self.aw
        } else if port.name.contains("data") {
            self.data_bits
        } else {
            port.width
        }
    }
}

/// Verifies the structure of a netlist, accumulating every problem.
pub fn verify_all(net: &Netlist) -> RtlReport {
    let mut errors = Vec::new();

    // Unique module names; the first definition wins for lookups.
    let mut by_name: HashMap<&str, &Module> = HashMap::new();
    for m in &net.modules {
        if by_name.contains_key(m.name.as_str()) {
            errors.push(RtlError::DuplicateModule {
                name: m.name.clone(),
            });
        } else {
            by_name.insert(m.name.as_str(), m);
        }
    }

    let mut instances = 0usize;
    let mut sram_instances = 0usize;
    let mut nets = 0usize;
    let mut registers = 0usize;

    for m in &net.modules {
        // Unique net names.
        let mut seen: HashSet<&str> = HashSet::new();
        for n in &m.nets {
            nets += 1;
            if !seen.insert(n.name.as_str()) {
                errors.push(RtlError::DuplicateSignal {
                    name: n.name.clone(),
                    within: m.name.clone(),
                });
            }
        }

        // SRAM parameter values inside a line buffer: macros are
        // instantiated at the buffer's address width and the pixel
        // datapath width.
        let sram_params = match &m.kind {
            ModuleKind::LineBuffer(p) => net.buffers.get(p.buffer).map(|b| SramParams {
                aw: b.aw,
                data_bits: net.widths.pixel_bits,
            }),
            _ => None,
        };

        // Driver analysis: input ports are driven by the environment.
        let mut drives: HashMap<DriveKey, u32> = HashMap::new();
        for n in &m.nets {
            if matches!(n.port, Some(Dir::Input)) {
                drives.insert((n.name.clone(), None), 1);
            }
        }

        for item in &m.items {
            match item {
                Item::Assign { net } => record_drive(&mut errors, &mut drives, m, net, None),
                Item::Register { net } => {
                    registers += 1;
                    record_drive(&mut errors, &mut drives, m, net, None);
                }
                Item::WindowLoad { sra, edge } => {
                    registers += 1;
                    debug_assert!(*edge < net.edges.len(), "window load names a real edge");
                    record_drive(&mut errors, &mut drives, m, sra, None);
                }
                Item::Inst(inst) => {
                    instances += 1;
                    let Some(target) = by_name.get(inst.module.as_str()) else {
                        errors.push(RtlError::UndefinedModule {
                            name: inst.module.clone(),
                            within: m.name.clone(),
                        });
                        continue;
                    };
                    if matches!(target.kind, ModuleKind::SramPrimitive { .. }) {
                        sram_instances += 1;
                    }
                    verify_instance(m, inst, target, sram_params, &mut drives, &mut errors);
                }
            }
        }

        // Every non-input net must be driven exactly once (array nets:
        // exactly once per element, with no whole-array/element overlap).
        for n in &m.nets {
            if matches!(n.port, Some(Dir::Input)) {
                continue;
            }
            let whole = drives.get(&(n.name.clone(), None)).copied().unwrap_or(0);
            let elems: Vec<u32> = (0..n.array.unwrap_or(0))
                .map(|i| drives.get(&(n.name.clone(), Some(i))).copied().unwrap_or(0))
                .collect();
            let elem_total: u32 = elems.iter().sum();
            if whole == 0 && elem_total == 0 {
                errors.push(RtlError::UndrivenNet {
                    net: n.name.clone(),
                    within: m.name.clone(),
                });
                continue;
            }
            let conflict =
                whole > 1 || (whole >= 1 && elem_total > 0) || elems.iter().any(|&c| c > 1);
            if conflict {
                errors.push(RtlError::MultipleDrivers {
                    net: n.name.clone(),
                    within: m.name.clone(),
                });
            }
        }
    }

    RtlReport {
        summary: RtlSummary {
            modules: net.modules.len(),
            instances,
            sram_instances,
            nets,
            registers,
        },
        errors,
    }
}

/// Verifies the structure of a netlist.
///
/// First-error facade over [`verify_all`], kept for source compatibility.
///
/// # Errors
///
/// The first [`RtlError`] found.
pub fn verify_structure(net: &Netlist) -> Result<RtlSummary, RtlError> {
    verify_all(net).into_result()
}

fn verify_instance(
    m: &Module,
    inst: &crate::netlist::Instance,
    target: &Module,
    sram_params: Option<SramParams>,
    drives: &mut HashMap<DriveKey, u32>,
    errors: &mut Vec<RtlError>,
) {
    // SRAM primitives are parameterized (DEPTH/WIDTH/AW set per
    // instance): their port widths are checked against the enclosing
    // line buffer's parameter values. Outside a line buffer (no known
    // parameter binding) the check degrades to shape only.
    let parameterized = matches!(target.kind, ModuleKind::SramPrimitive { .. });
    // `None` means "skip the bit-count check" for this instance.
    let expected_bits = |port: &Net| -> Option<u32> {
        if !parameterized {
            Some(port.width)
        } else {
            sram_params.map(|p| p.port_bits(port))
        }
    };

    let mut connected: HashSet<&str> = HashSet::new();
    for (port_name, conn) in &inst.conns {
        let Some(port) = target.net(port_name).filter(|n| n.port.is_some()) else {
            errors.push(RtlError::UnknownPort {
                instance: inst.name.clone(),
                module: target.name.clone(),
                port: port_name.clone(),
            });
            continue;
        };
        if !connected.insert(port_name.as_str()) {
            errors.push(RtlError::UnknownPort {
                instance: inst.name.clone(),
                module: target.name.clone(),
                port: port_name.clone(),
            });
            continue;
        }
        let dir = port.port.expect("filtered to ports");
        match conn {
            Conn::Open => {
                if dir == Dir::Input {
                    errors.push(RtlError::UnconnectedInput {
                        instance: inst.name.clone(),
                        module: target.name.clone(),
                        port: port_name.clone(),
                    });
                }
            }
            Conn::Net(local) => {
                let Some(n) = m.net(local) else {
                    errors.push(RtlError::UnknownNet {
                        net: local.clone(),
                        within: m.name.clone(),
                    });
                    continue;
                };
                if let Some(want) = expected_bits(port) {
                    if n.width != want || n.array != port.array {
                        errors.push(RtlError::WidthMismatch {
                            instance: inst.name.clone(),
                            port: port_name.clone(),
                            expected: want * port.array.unwrap_or(1),
                            found: n.width * n.array.unwrap_or(1),
                        });
                    }
                }
                if dir == Dir::Output {
                    record_drive(errors, drives, m, local, None);
                }
            }
            Conn::NetIndex(local, idx) => {
                let Some(n) = m.net(local) else {
                    errors.push(RtlError::UnknownNet {
                        net: local.clone(),
                        within: m.name.clone(),
                    });
                    continue;
                };
                // An element connection requires an array net and a
                // scalar port.
                let in_range = n.array.is_some_and(|len| *idx < len);
                if !in_range || port.array.is_some() {
                    errors.push(RtlError::WidthMismatch {
                        instance: inst.name.clone(),
                        port: port_name.clone(),
                        expected: port.width,
                        found: if in_range { n.width } else { 0 },
                    });
                } else if let Some(want) = expected_bits(port) {
                    if n.width != want {
                        errors.push(RtlError::WidthMismatch {
                            instance: inst.name.clone(),
                            port: port_name.clone(),
                            expected: want,
                            found: n.width,
                        });
                    }
                }
                if dir == Dir::Output {
                    record_drive(errors, drives, m, local, Some(*idx));
                }
            }
            Conn::Const(_, width) => {
                if let Some(want) = expected_bits(port) {
                    if *width != want {
                        errors.push(RtlError::WidthMismatch {
                            instance: inst.name.clone(),
                            port: port_name.clone(),
                            expected: want,
                            found: *width,
                        });
                    }
                }
            }
            // Anonymous glue expressions are sized by context; nothing to
            // check beyond the port existing (drivers: expressions never
            // connect to outputs in generated netlists).
            Conn::Expr(_) => {}
        }
    }

    // Every input port of the target must be connected.
    for p in target.ports() {
        if matches!(p.port, Some(Dir::Input)) && !connected.contains(p.name.as_str()) {
            errors.push(RtlError::UnconnectedInput {
                instance: inst.name.clone(),
                module: target.name.clone(),
                port: p.name.clone(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{build_netlist, BitWidths, Conn, Instance, Item};
    use imagen_ir::{Dag, Expr};
    use imagen_mem::{DesignStyle, ImageGeometry, MemBackend, MemorySpec};
    use imagen_schedule::{plan_design, ScheduleOptions};

    fn netlist() -> Netlist {
        let mut dag = Dag::new("v");
        let k0 = dag.add_input("K0");
        let k1 = dag
            .add_stage("K1", &[k0], Expr::sum((0..3).map(|i| Expr::tap(0, 0, i))))
            .unwrap();
        dag.mark_output(k1);
        let geom = ImageGeometry {
            width: 16,
            height: 12,
            pixel_bits: 16,
        };
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 512 }, 2);
        let p = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        build_netlist(&p.dag, &p.design, &BitWidths::default())
    }

    #[test]
    fn accepts_generated_netlists() {
        let net = netlist();
        let s = verify_structure(&net).unwrap();
        assert_eq!(s.modules, net.modules.len());
        assert!(s.instances > 0);
        assert!(s.sram_instances > 0);
        assert!(s.nets > 10);
        assert!(s.registers > 0);
    }

    #[test]
    fn rejects_duplicate_modules() {
        let mut net = netlist();
        let dup = net.modules[2].clone();
        net.modules.push(dup);
        assert!(matches!(
            verify_structure(&net),
            Err(RtlError::DuplicateModule { .. })
        ));
    }

    #[test]
    fn rejects_undefined_instances() {
        let mut net = netlist();
        let top = net.top;
        net.modules[top].items.push(Item::Inst(Instance {
            module: "stage_ghost".to_string(),
            name: "u_ghost".to_string(),
            conns: vec![],
        }));
        assert!(matches!(
            verify_structure(&net),
            Err(RtlError::UndefinedModule { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_signals() {
        let mut net = netlist();
        let top = net.top;
        let dup = net.modules[top].nets[5].clone();
        net.modules[top].nets.push(dup);
        assert!(matches!(
            verify_structure(&net),
            Err(RtlError::DuplicateSignal { .. })
        ));
    }

    #[test]
    fn rejects_unknown_ports() {
        let mut net = netlist();
        let top = net.top;
        for item in net.modules[top].items.iter_mut() {
            if let Item::Inst(inst) = item {
                if inst.module.starts_with("stage_") {
                    inst.conns
                        .push(("bogus".to_string(), Conn::Net("cycle".to_string())));
                    break;
                }
            }
        }
        assert!(matches!(
            verify_structure(&net),
            Err(RtlError::UnknownPort { .. })
        ));
    }

    #[test]
    fn rejects_open_inputs() {
        let mut net = netlist();
        let top = net.top;
        for item in net.modules[top].items.iter_mut() {
            if let Item::Inst(inst) = item {
                if inst.module.starts_with("stage_") {
                    inst.conns.retain(|(p, _)| p != "en");
                    break;
                }
            }
        }
        assert!(matches!(
            verify_structure(&net),
            Err(RtlError::UnconnectedInput { .. })
        ));
    }

    #[test]
    fn rejects_width_mismatches() {
        let mut net = netlist();
        let top = net.top;
        for item in net.modules[top].items.iter_mut() {
            if let Item::Inst(inst) = item {
                if inst.module.starts_with("stage_") {
                    for (p, c) in inst.conns.iter_mut() {
                        if p == "en" {
                            // 64-bit counter into a 1-bit enable.
                            *c = Conn::Net("cycle".to_string());
                        }
                    }
                    break;
                }
            }
        }
        assert!(matches!(
            verify_structure(&net),
            Err(RtlError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn rejects_undriven_nets() {
        let mut net = netlist();
        let top = net.top;
        // Drop the frame_done assign: the output port loses its driver.
        net.modules[top]
            .items
            .retain(|i| !matches!(i, Item::Assign { net } if net == "frame_done"));
        assert!(matches!(
            verify_structure(&net),
            Err(RtlError::UndrivenNet { .. })
        ));
    }

    #[test]
    fn rejects_multiple_drivers() {
        let mut net = netlist();
        let top = net.top;
        net.modules[top].items.push(Item::Assign {
            net: "frame_done".to_string(),
        });
        assert!(matches!(
            verify_structure(&net),
            Err(RtlError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn verify_all_accumulates_independent_errors() {
        let mut net = netlist();
        let top = net.top;
        // Two unrelated breakages: an undriven output port and a bogus
        // port connection on a stage instance.
        net.modules[top]
            .items
            .retain(|i| !matches!(i, Item::Assign { net } if net == "frame_done"));
        for item in net.modules[top].items.iter_mut() {
            if let Item::Inst(inst) = item {
                if inst.module.starts_with("stage_") {
                    inst.conns
                        .push(("bogus".to_string(), Conn::Net("cycle".to_string())));
                    break;
                }
            }
        }
        let report = verify_all(&net);
        assert_eq!(report.errors.len(), 2, "{:?}", report.errors);
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, RtlError::UnknownPort { .. })));
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, RtlError::UndrivenNet { .. })));
        // The shim surfaces the first of them.
        assert!(verify_structure(&net).is_err());
        // Summary counting still works on broken netlists.
        assert_eq!(report.summary.modules, net.modules.len());
    }

    #[test]
    fn sram_instantiations_width_checked_against_parameters() {
        let mut net = netlist();
        // Find a line-buffer module and rewire an SRAM address port to a
        // 32-bit row counter: under the old blanket exemption this passed
        // silently, now it must be a width mismatch against the macro's
        // instantiated address width.
        let lb = net
            .modules
            .iter_mut()
            .find(|m| matches!(m.kind, ModuleKind::LineBuffer(_)))
            .expect("generated netlist has a line buffer");
        let mut rewired = false;
        for item in lb.items.iter_mut() {
            if let Item::Inst(inst) = item {
                for (p, c) in inst.conns.iter_mut() {
                    if p.starts_with("addr") {
                        *c = Conn::Net("wphys".to_string());
                        rewired = true;
                        break;
                    }
                }
            }
            if rewired {
                break;
            }
        }
        assert!(rewired, "found an SRAM address port to rewire");
        match verify_structure(&net) {
            Err(RtlError::WidthMismatch {
                port,
                expected,
                found,
                ..
            }) => {
                assert!(port.starts_with("addr"));
                assert_eq!(found, 32, "wphys is a 32-bit counter");
                assert!(expected < 32, "address width comes from the macro depth");
            }
            other => panic!("expected a width mismatch, got {other:?}"),
        }
    }

    #[test]
    fn generated_sram_connections_satisfy_parameter_widths() {
        // The fix must not reject what the builder actually emits: every
        // SRAM connection in a generated netlist matches the macro's
        // parameter widths.
        let net = netlist();
        let report = verify_all(&net);
        assert!(report.is_clean(), "{:?}", report.errors);
        assert!(report.summary.sram_instances > 0);
    }
}
