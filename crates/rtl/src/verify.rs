//! Structural verification of emitted Verilog.
//!
//! No commercial synthesis tool is available in this environment
//! (DESIGN.md §5), so the generator's output is checked structurally: a
//! small Verilog-aware scanner verifies that the netlist is well-formed
//! enough that a real tool would elaborate it — balanced constructs,
//! unique module names, every instantiated module defined, and no
//! duplicate wire/reg declarations within a module.

use std::collections::{HashMap, HashSet};
use std::fmt;

/// Structural problems found in generated Verilog.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RtlError {
    /// `module` / `endmodule` do not balance.
    UnbalancedModules {
        /// `module` keywords seen.
        opens: usize,
        /// `endmodule` keywords seen.
        closes: usize,
    },
    /// Parentheses or brackets do not balance.
    UnbalancedDelimiters {
        /// The offending character class.
        what: char,
    },
    /// Two modules share a name.
    DuplicateModule {
        /// The repeated name.
        name: String,
    },
    /// An instantiated module has no definition.
    UndefinedModule {
        /// The missing module.
        name: String,
        /// Module doing the instantiation.
        within: String,
    },
    /// A wire/reg identifier is declared twice in one module.
    DuplicateSignal {
        /// The repeated signal.
        name: String,
        /// Module containing it.
        within: String,
    },
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtlError::UnbalancedModules { opens, closes } => {
                write!(f, "{opens} `module` vs {closes} `endmodule`")
            }
            RtlError::UnbalancedDelimiters { what } => {
                write!(f, "unbalanced `{what}` delimiters")
            }
            RtlError::DuplicateModule { name } => {
                write!(f, "module `{name}` defined more than once")
            }
            RtlError::UndefinedModule { name, within } => {
                write!(
                    f,
                    "module `{name}` instantiated in `{within}` but never defined"
                )
            }
            RtlError::DuplicateSignal { name, within } => {
                write!(f, "signal `{name}` declared twice in module `{within}`")
            }
        }
    }
}

impl std::error::Error for RtlError {}

/// Summary of a verified netlist.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RtlSummary {
    /// Modules defined.
    pub modules: usize,
    /// Module instantiations.
    pub instances: usize,
    /// SRAM primitive instances.
    pub sram_instances: usize,
    /// Total source lines.
    pub lines: usize,
}

fn strip_comments(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '/' {
            match chars.peek() {
                Some('/') => {
                    for d in chars.by_ref() {
                        if d == '\n' {
                            out.push('\n');
                            break;
                        }
                    }
                    continue;
                }
                Some('*') => {
                    chars.next();
                    let mut prev = ' ';
                    for d in chars.by_ref() {
                        if prev == '*' && d == '/' {
                            break;
                        }
                        prev = d;
                    }
                    continue;
                }
                _ => {}
            }
        }
        out.push(c);
    }
    out
}

/// Verifies the structure of a Verilog source string.
///
/// # Errors
///
/// The first [`RtlError`] found.
pub fn verify_structure(src: &str) -> Result<RtlSummary, RtlError> {
    let clean = strip_comments(src);

    // Delimiter balance.
    for (open, close, what) in [('(', ')', '('), ('[', ']', '[')] {
        let o = clean.chars().filter(|&c| c == open).count();
        let c = clean.chars().filter(|&c| c == close).count();
        if o != c {
            return Err(RtlError::UnbalancedDelimiters { what });
        }
    }

    let tokens: Vec<&str> = clean
        .split(|c: char| c.is_whitespace() || "();,.".contains(c))
        .filter(|t| !t.is_empty())
        .collect();

    let opens = tokens.iter().filter(|&&t| t == "module").count();
    let closes = tokens.iter().filter(|&&t| t == "endmodule").count();
    if opens != closes {
        return Err(RtlError::UnbalancedModules { opens, closes });
    }

    // Per-module scan: names, declarations, instantiations.
    let mut defined: Vec<String> = Vec::new();
    let mut instantiated: Vec<(String, String)> = Vec::new();
    let mut current = String::new();
    let mut signals: HashMap<String, HashSet<String>> = HashMap::new();
    let mut i = 0;
    let mut instances = 0usize;
    while i < tokens.len() {
        match tokens[i] {
            "module" => {
                let name = tokens
                    .get(i + 1)
                    .map(|s| s.trim_end_matches('#'))
                    .unwrap_or("")
                    .to_string();
                if defined.contains(&name) {
                    return Err(RtlError::DuplicateModule { name });
                }
                defined.push(name.clone());
                current = name;
                i += 2;
                continue;
            }
            "endmodule" => {
                current.clear();
            }
            "wire" | "reg" => {
                // Skip qualifiers and width specs to the identifier.
                let mut j = i + 1;
                while j < tokens.len()
                    && (tokens[j] == "signed"
                        || tokens[j].starts_with('[')
                        || tokens[j].contains(':'))
                {
                    j += 1;
                }
                if let Some(name) = tokens.get(j) {
                    // Memory declarations `reg ... mem [0:N]` reuse ident.
                    let entry = signals.entry(current.clone()).or_default();
                    if !entry.insert((*name).to_string()) && !current.is_empty() && *name != "mem" {
                        return Err(RtlError::DuplicateSignal {
                            name: (*name).to_string(),
                            within: current.clone(),
                        });
                    }
                }
            }
            t if (t.starts_with("imagen_sram")
                || t.starts_with("stage_")
                || t.starts_with("linebuf_"))
                && !current.is_empty()
                && tokens.get(i.wrapping_sub(1)) != Some(&"module") =>
            {
                instantiated.push((t.to_string(), current.clone()));
                instances += 1;
            }
            _ => {}
        }
        i += 1;
    }

    for (name, within) in &instantiated {
        if !defined.iter().any(|d| d == name) {
            return Err(RtlError::UndefinedModule {
                name: name.clone(),
                within: within.clone(),
            });
        }
    }

    Ok(RtlSummary {
        modules: defined.len(),
        instances,
        sram_instances: instantiated
            .iter()
            .filter(|(n, _)| n.starts_with("imagen_sram"))
            .count(),
        lines: src.lines().count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed() {
        let src = "module a (input wire clk); wire x; endmodule\nmodule b (); stage_x u(); endmodule\nmodule stage_x (); endmodule";
        let s = verify_structure(src).unwrap();
        assert_eq!(s.modules, 3);
        assert_eq!(s.instances, 1);
    }

    #[test]
    fn rejects_unbalanced_modules() {
        let err = verify_structure("module a (); wire x;").unwrap_err();
        assert!(matches!(err, RtlError::UnbalancedModules { .. }));
    }

    #[test]
    fn rejects_duplicate_modules() {
        let err = verify_structure("module a (); endmodule module a (); endmodule").unwrap_err();
        assert!(matches!(err, RtlError::DuplicateModule { .. }));
    }

    #[test]
    fn rejects_undefined_instances() {
        let err = verify_structure("module a (); stage_missing u (); endmodule").unwrap_err();
        assert!(matches!(err, RtlError::UndefinedModule { .. }));
    }

    #[test]
    fn rejects_duplicate_signals() {
        let err = verify_structure("module a (); wire x; wire x; endmodule").unwrap_err();
        assert!(matches!(err, RtlError::DuplicateSignal { name, .. } if name == "x"));
    }

    #[test]
    fn comments_ignored() {
        verify_structure("// module ghost (\nmodule a (); /* wire x; wire x; */ endmodule")
            .unwrap();
    }

    #[test]
    fn rejects_unbalanced_parens() {
        let err = verify_structure("module a ((); endmodule").unwrap_err();
        assert!(matches!(err, RtlError::UnbalancedDelimiters { .. }));
    }
}
