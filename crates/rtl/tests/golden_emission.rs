//! Golden-file pin for the emitter refactor: the netlist-based renderer
//! must reproduce the pre-refactor string emitter's output byte for byte
//! at default bit widths. The `.v` files under `crates/rtl/golden/` were
//! written by the seed emitter (before the netlist IR existed) for two
//! seed pipelines at a fixed geometry/memory configuration; regenerating
//! them is a deliberate act, not a test-suite side effect.

use imagen_algos::Algorithm;
use imagen_mem::{DesignStyle, ImageGeometry, MemBackend, MemorySpec};
use imagen_rtl::{build_netlist, emit_verilog, verify_structure, BitWidths};
use imagen_schedule::{plan_design, ScheduleOptions};

fn golden_config() -> (ImageGeometry, MemorySpec) {
    let geom = ImageGeometry {
        width: 40,
        height: 30,
        pixel_bits: 16,
    };
    let spec = MemorySpec::new(
        MemBackend::Asic {
            block_bits: 2 * geom.row_bits(),
        },
        2,
    );
    (geom, spec)
}

fn check(alg: Algorithm, golden: &str) {
    let (geom, spec) = golden_config();
    let plan = plan_design(
        &alg.build(),
        &geom,
        &spec,
        ScheduleOptions::default(),
        DesignStyle::Ours,
    )
    .unwrap();
    let net = build_netlist(&plan.dag, &plan.design, &BitWidths::default());
    verify_structure(&net).unwrap();
    let emitted = emit_verilog(&net);
    assert!(
        emitted == golden,
        "{} emission diverged from the pre-refactor golden (first differing line: {:?})",
        alg.name(),
        emitted
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("line {}: {a:?} vs golden {b:?}", i + 1))
    );
}

#[test]
fn unsharp_m_emission_is_byte_identical() {
    check(
        Algorithm::UnsharpM,
        include_str!("../golden/unsharp_m_40x30.v"),
    );
}

#[test]
fn canny_s_emission_is_byte_identical() {
    check(Algorithm::CannyS, include_str!("../golden/canny_s_40x30.v"));
}
