//! Golden-file pin for the emitter: the netlist-based renderer must
//! reproduce the pinned output byte for byte at default bit widths.
//!
//! * `unsharp_m_40x30.v` / `canny_s_40x30.v` were written by the *seed*
//!   emitter (before the netlist IR existed) — the refactor pin;
//! * `denoise_m_40x30.v` and its clock-gated variant
//!   `denoise_m_40x30_gated.v` anchor the gating emitter path
//!   (`imagen_power::gate_clocks` → `emit_verilog`) at the byte level.
//!
//! Regenerating any golden is a deliberate act, not a test-suite side
//! effect.

use imagen_algos::Algorithm;
use imagen_mem::{DesignStyle, ImageGeometry, MemBackend, MemorySpec};
use imagen_rtl::{build_netlist, emit_verilog, verify_all, BitWidths, Netlist};
use imagen_schedule::{plan_design, ScheduleOptions};

fn golden_config() -> (ImageGeometry, MemorySpec) {
    let geom = ImageGeometry {
        width: 40,
        height: 30,
        pixel_bits: 16,
    };
    let spec = MemorySpec::new(
        MemBackend::Asic {
            block_bits: 2 * geom.row_bits(),
        },
        2,
    );
    (geom, spec)
}

fn golden_netlist(alg: Algorithm) -> Netlist {
    let (geom, spec) = golden_config();
    let plan = plan_design(
        &alg.build(),
        &geom,
        &spec,
        ScheduleOptions::default(),
        DesignStyle::Ours,
    )
    .unwrap();
    build_netlist(&plan.dag, &plan.design, &BitWidths::default())
}

fn check_net(alg: Algorithm, net: &Netlist, golden: &str) {
    let report = verify_all(net);
    assert!(report.is_clean(), "{}: {:?}", alg.name(), report.errors);
    let emitted = emit_verilog(net);
    assert!(
        emitted == golden,
        "{} emission diverged from the pinned golden (first differing line: {:?})",
        alg.name(),
        emitted
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("line {}: {a:?} vs golden {b:?}", i + 1))
    );
}

fn check(alg: Algorithm, golden: &str) {
    check_net(alg, &golden_netlist(alg), golden);
}

#[test]
fn unsharp_m_emission_is_byte_identical() {
    check(
        Algorithm::UnsharpM,
        include_str!("../golden/unsharp_m_40x30.v"),
    );
}

#[test]
fn canny_s_emission_is_byte_identical() {
    check(Algorithm::CannyS, include_str!("../golden/canny_s_40x30.v"));
}

#[test]
fn denoise_m_emission_is_byte_identical() {
    check(
        Algorithm::DenoiseM,
        include_str!("../golden/denoise_m_40x30.v"),
    );
}

#[test]
fn denoise_m_gated_emission_is_byte_identical() {
    // The clock-gating emitter path: the same design through the real
    // gate_clocks pass must render the pinned gated Verilog — the gate
    // wires, the rewritten .ren connections, the header marker — byte
    // for byte, while the ungated emission stays untouched.
    let net = golden_netlist(Algorithm::DenoiseM);
    let gated = imagen_power::gate_clocks(&net);
    check_net(
        Algorithm::DenoiseM,
        &gated,
        include_str!("../golden/denoise_m_40x30_gated.v"),
    );
    // Gating a copy must not perturb the original netlist's emission.
    check(
        Algorithm::DenoiseM,
        include_str!("../golden/denoise_m_40x30.v"),
    );
}
