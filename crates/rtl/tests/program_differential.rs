//! Differential suite: the compiled evaluation program vs the legacy
//! graph-walking interpreter.
//!
//! [`interpret`] / [`interpret_with_trace`] route through the one-time
//! netlist→program compiler; [`interpret_legacy`] /
//! [`interpret_with_trace_legacy`] re-walk the netlist graph every
//! cycle. The two must be **bit-identical** — same [`InterpReport`]
//! (cycles, latency, access totals, every output pixel) and same
//! [`ActivityTrace`] field for field — on:
//!
//! * the full Tbl. 3 corpus (all 7 pipelines), at both width regimes
//!   (16/32 default and 64/64 wide), ungated and clock-gated;
//! * randomly generated DAGs exercising every kernel operator (wrapping
//!   arithmetic, division by zero, out-of-range shifts, comparisons,
//!   selects, inverted clamps) on random seeds.

use imagen_algos::{noise_bits, Algorithm};
use imagen_ir::{BinOp, CmpOp, Dag, Expr, Rate};
use imagen_mem::{DesignStyle, ImageGeometry, MemBackend, MemorySpec};
use imagen_power::gate_clocks;
use imagen_rtl::{
    build_netlist, interpret, interpret_legacy, interpret_with_trace, interpret_with_trace_legacy,
    ActivityTrace, BitWidths, InterpReport, Netlist,
};
use imagen_schedule::{plan_design, ScheduleOptions};
use imagen_sim::Image;
use proptest::prelude::*;

fn assert_report_eq(tag: &str, a: &InterpReport, b: &InterpReport) {
    assert_eq!(a.cycles, b.cycles, "{tag}: cycles");
    assert_eq!(a.latency, b.latency, "{tag}: latency");
    assert_eq!(a.sram_reads, b.sram_reads, "{tag}: sram_reads");
    assert_eq!(a.sram_writes, b.sram_writes, "{tag}: sram_writes");
    assert_eq!(
        a.gated_off_cycles, b.gated_off_cycles,
        "{tag}: gated_off_cycles"
    );
    assert_eq!(
        a.output_images.len(),
        b.output_images.len(),
        "{tag}: output stream count"
    );
    for ((sa, ia), (sb, ib)) in a.output_images.iter().zip(&b.output_images) {
        assert_eq!(sa, sb, "{tag}: output stage order");
        assert_eq!(ia, ib, "{tag}: output image of stage {sa}");
    }
}

fn assert_trace_eq(tag: &str, a: &ActivityTrace, b: &ActivityTrace) {
    assert_eq!(a.run_cycles, b.run_cycles, "{tag}: run_cycles");
    assert_eq!(a.frame, b.frame, "{tag}: frame");
    assert_eq!(a.buffers.len(), b.buffers.len(), "{tag}: buffer count");
    for (i, (ba, bb)) in a.buffers.iter().zip(&b.buffers).enumerate() {
        assert_eq!(ba.stage, bb.stage, "{tag}: buffer {i} stage");
        assert_eq!(ba.block_reads, bb.block_reads, "{tag}: buffer {i} reads");
        assert_eq!(ba.block_writes, bb.block_writes, "{tag}: buffer {i} writes");
        assert_eq!(ba.block_peaks, bb.block_peaks, "{tag}: buffer {i} peaks");
        assert_eq!(
            ba.read_enabled_cycles, bb.read_enabled_cycles,
            "{tag}: buffer {i} read_enabled_cycles"
        );
        assert_eq!(
            ba.idle_read_cycles, bb.idle_read_cycles,
            "{tag}: buffer {i} idle_read_cycles"
        );
        assert_eq!(
            ba.gated_off_cycles, bb.gated_off_cycles,
            "{tag}: buffer {i} gated_off_cycles"
        );
        assert_eq!(ba.fifo, bb.fifo, "{tag}: buffer {i} fifo");
    }
    assert_eq!(a.stages.len(), b.stages.len(), "{tag}: stage count");
    for (i, (sa, sb)) in a.stages.iter().zip(&b.stages).enumerate() {
        assert_eq!(
            sa.active_cycles, sb.active_cycles,
            "{tag}: stage {i} active_cycles"
        );
        assert_eq!(
            sa.out_reg_writes, sb.out_reg_writes,
            "{tag}: stage {i} out_reg_writes"
        );
        assert_eq!(
            sa.out_reg_toggles, sb.out_reg_toggles,
            "{tag}: stage {i} out_reg_toggles"
        );
    }
    assert_eq!(a.sras.len(), b.sras.len(), "{tag}: sra count");
    for (i, (sa, sb)) in a.sras.iter().zip(&b.sras).enumerate() {
        assert_eq!(
            sa.shift_cycles, sb.shift_cycles,
            "{tag}: sra {i} shift_cycles"
        );
        assert_eq!(sa.cell_writes, sb.cell_writes, "{tag}: sra {i} cell_writes");
        assert_eq!(sa.bit_toggles, sb.bit_toggles, "{tag}: sra {i} bit_toggles");
    }
}

/// Runs both engines (untraced and traced) on `net` and pins equality.
fn differential(tag: &str, net: &Netlist, inputs: &[Image]) {
    let fast = interpret(net, inputs).expect("program path");
    let slow = interpret_legacy(net, inputs).expect("legacy path");
    assert_report_eq(tag, &fast, &slow);

    let (fast_rep, fast_tr) = interpret_with_trace(net, inputs).expect("program traced");
    let (slow_rep, slow_tr) = interpret_with_trace_legacy(net, inputs).expect("legacy traced");
    assert_report_eq(&format!("{tag} traced"), &fast_rep, &slow_rep);
    assert_trace_eq(tag, &fast_tr, &slow_tr);

    // Tracing must not perturb results either.
    assert_report_eq(&format!("{tag} traced-vs-untraced"), &fast, &fast_rep);
}

fn noise_inputs(dag: &Dag, geom: &ImageGeometry, seed: u64, bits: u32) -> Vec<Image> {
    let n = dag.stages().filter(|(_, s)| s.is_input()).count();
    (0..n)
        .map(|i| {
            let seed = seed.wrapping_add(i as u64);
            Image::from_fn(geom.width, geom.height, move |x, y| {
                noise_bits(seed, x, y, bits)
            })
        })
        .collect()
}

/// The full Tbl. 3 corpus × {16/32, 64/64} × {ungated, gated}.
#[test]
fn program_matches_legacy_on_corpus() {
    let geom = ImageGeometry {
        width: 48,
        height: 32,
        pixel_bits: 16,
    };
    let spec = MemorySpec::new(MemBackend::asic_default(), 2);
    for alg in Algorithm::all() {
        let dag = alg.build();
        let plan = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        let inputs = noise_inputs(&plan.dag, &geom, 0xD1FF + alg as u64, 4);
        for (wname, widths) in [
            ("16/32", BitWidths::default()),
            ("64/64", BitWidths::wide()),
        ] {
            let net = build_netlist(&plan.dag, &plan.design, &widths);
            differential(&format!("{alg:?} {wname} ungated"), &net, &inputs);
            let gated = gate_clocks(&net);
            differential(&format!("{alg:?} {wname} gated"), &gated, &inputs);
        }
    }
}

/// 1-2-1 / 2-4-2 / 1-2-1 smoothing kernel over `slot`, `>> 4`.
fn gauss3(slot: usize) -> Expr {
    let t = |dx: i32, dy: i32| Expr::tap(slot, dx, dy);
    let sum = [
        (-1, -1, 1),
        (0, -1, 2),
        (1, -1, 1),
        (-1, 0, 2),
        (0, 0, 4),
        (1, 0, 2),
        (-1, 1, 1),
        (0, 1, 2),
        (1, 1, 1),
    ]
    .into_iter()
    .map(|(dx, dy, k)| {
        if k == 1 {
            t(dx, dy)
        } else {
            Expr::bin(BinOp::Mul, Expr::Const(k), t(dx, dy))
        }
    })
    .reduce(|a, b| Expr::bin(BinOp::Add, a, b))
    .unwrap();
    Expr::bin(BinOp::Shr, sum, Expr::Const(4))
}

/// A pyramid pipeline — blur, decimate 2×2, half-rate blur, replicate
/// back up, and a unit-rate band stage subtracting the reconstruction
/// from the full-rate input — through the strided multirate program
/// path vs the legacy interpreter, both width regimes, ungated and
/// gated. This is the one corpus entry whose program takes the
/// `exec_multirate` scalar path instead of the tile loop.
#[test]
fn program_matches_legacy_on_pyramid() {
    let geom = ImageGeometry {
        width: 48,
        height: 32,
        pixel_bits: 16,
    };
    let spec = MemorySpec::new(MemBackend::asic_default(), 2);
    let mut dag = Dag::new("pyramid");
    let raw = dag.add_input("raw");
    let g0 = dag.add_stage("g0", &[raw], gauss3(0)).unwrap();
    let l1 = dag
        .add_stage_rated("l1", &[g0], Expr::tap(0, 0, 0), Rate::Down { fx: 2, fy: 2 })
        .unwrap();
    let g1 = dag
        .add_stage(
            "g1",
            &[l1],
            Expr::bin(
                BinOp::Shr,
                Expr::bin(
                    BinOp::Add,
                    Expr::bin(
                        BinOp::Add,
                        Expr::tap(0, -1, 0),
                        Expr::bin(BinOp::Mul, Expr::Const(2), Expr::tap(0, 0, 0)),
                    ),
                    Expr::tap(0, 1, 0),
                ),
                Expr::Const(2),
            ),
        )
        .unwrap();
    let up1 = dag
        .add_stage_rated("up1", &[g1], Expr::tap(0, 0, 0), Rate::Up { fx: 2, fy: 2 })
        .unwrap();
    let band = dag
        .add_stage(
            "band",
            &[raw, up1],
            Expr::bin(BinOp::Sub, Expr::tap(0, 0, 0), Expr::tap(1, 0, 0)),
        )
        .unwrap();
    dag.mark_output(band);

    let plan = plan_design(
        &dag,
        &geom,
        &spec,
        ScheduleOptions::default(),
        DesignStyle::Ours,
    )
    .unwrap();
    let inputs = noise_inputs(&plan.dag, &geom, 0x9E7A, 4);
    for (wname, widths) in [
        ("16/32", BitWidths::default()),
        ("64/64", BitWidths::wide()),
    ] {
        let net = build_netlist(&plan.dag, &plan.design, &widths);
        differential(&format!("pyramid {wname} ungated"), &net, &inputs);
        differential(&format!("pyramid {wname} gated"), &gate_clocks(&net), &inputs);
    }
}

/// SplitMix64 step — the corpus generator's only randomness source, so
/// every case is reproducible from the proptest seed.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A random kernel expression over producer slot 0, deliberately biased
/// toward the interpreter's edge cases: division by a possibly-zero
/// runtime value, shift amounts beyond the 0..64 range, clamps whose
/// bounds may invert, and comparisons feeding selects.
fn rand_expr(state: &mut u64, depth: u32) -> Expr {
    let tap = |state: &mut u64| {
        Expr::tap(
            0,
            (next(state) % 3) as i32 - 1,
            (next(state) % 3) as i32 - 1,
        )
    };
    if depth == 0 || next(state) % 8 < 2 {
        return if next(state).is_multiple_of(3) {
            Expr::Const((next(state) % 41) as i64 - 20)
        } else {
            tap(state)
        };
    }
    let d = depth - 1;
    match next(state) % 12 {
        0 => Expr::bin(BinOp::Add, rand_expr(state, d), rand_expr(state, d)),
        1 => Expr::bin(BinOp::Sub, rand_expr(state, d), rand_expr(state, d)),
        2 => Expr::bin(BinOp::Mul, rand_expr(state, d), rand_expr(state, d)),
        // Runtime divisor: hits the guarded divide-by-zero path whenever
        // the subtrahend taps cancel.
        3 => Expr::bin(
            BinOp::Div,
            rand_expr(state, d),
            Expr::bin(BinOp::Sub, tap(state), tap(state)),
        ),
        4 => Expr::bin(BinOp::Min, rand_expr(state, d), rand_expr(state, d)),
        5 => Expr::bin(BinOp::Max, rand_expr(state, d), rand_expr(state, d)),
        // Shift amounts drawn from 0..70: past 63 exercises the
        // out-of-range semantics the Verilog emitter pins.
        6 => Expr::bin(
            BinOp::Shl,
            rand_expr(state, d),
            Expr::Const((next(state) % 70) as i64),
        ),
        7 => Expr::bin(
            BinOp::Shr,
            rand_expr(state, d),
            Expr::Const((next(state) % 70) as i64),
        ),
        8 => Expr::Neg(Box::new(rand_expr(state, d))),
        9 => Expr::Abs(Box::new(rand_expr(state, d))),
        10 => {
            let op = [
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
                CmpOp::Eq,
                CmpOp::Ne,
            ][(next(state) % 6) as usize];
            Expr::select(
                Expr::cmp(op, rand_expr(state, d), rand_expr(state, d)),
                rand_expr(state, d),
                rand_expr(state, d),
            )
        }
        // Bounds may invert: the pinned semantics is lo-wins.
        _ => Expr::Clamp {
            value: Box::new(rand_expr(state, d)),
            lo: Box::new(rand_expr(state, d)),
            hi: Box::new(rand_expr(state, d)),
        },
    }
}

/// A random linear pipeline of 1–3 stages (each with at least one tap so
/// every stage has a stencil).
fn rand_dag(seed: u64, n_stages: usize) -> Dag {
    let mut state = seed;
    let mut dag = Dag::new("fuzz");
    let mut prev = dag.add_input("K0");
    for i in 0..n_stages {
        let expr = Expr::bin(BinOp::Add, Expr::tap(0, 0, 0), rand_expr(&mut state, 3));
        prev = dag.add_stage(format!("K{}", i + 1), &[prev], expr).unwrap();
    }
    dag.mark_output(prev);
    dag
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random DAGs, random input seeds: program ≡ legacy, ungated and
    /// gated, report and trace.
    #[test]
    fn program_matches_legacy_on_random_dags(
        seed in 0u64..u64::MAX,
        n_stages in 1usize..4,
        input_seed in 0u64..u64::MAX,
        bits in 1u32..9,
    ) {
        let geom = ImageGeometry { width: 32, height: 24, pixel_bits: 16 };
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 1024 }, 2);
        let dag = rand_dag(seed, n_stages);
        let plan = plan_design(&dag, &geom, &spec, ScheduleOptions::default(), DesignStyle::Ours)
            .unwrap();
        let inputs = noise_inputs(&plan.dag, &geom, input_seed, bits);
        for widths in [BitWidths::default(), BitWidths::wide()] {
            let net = build_netlist(&plan.dag, &plan.design, &widths);
            differential("random ungated", &net, &inputs);
            differential("random gated", &gate_clocks(&net), &inputs);
        }
    }
}
