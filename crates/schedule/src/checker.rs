//! Exact per-buffer access checking.
//!
//! The ILP constraints guarantee that *absolute* image rows never see more
//! accesses than ports (the paper's formulation, Sec. 5.3). A rotating
//! buffer additionally maps absolute rows `r` and `r + phys_rows` onto the
//! same physical block, so the writer can physically alias the oldest
//! resident reader row — benign on dual-port blocks (write + read = 2),
//! fatal on single-port ones (DESIGN.md §4). This module verifies both
//! levels exactly and computes the minimal physical slack.
//!
//! Access patterns are piecewise-constant between *transition cycles*
//! (stage activations, row advances, and column-segment crossings), so
//! checking every transition point is exact while costing
//! `O(entities² · height)` instead of a cycle count.

use std::fmt;

/// A resolved access stream: start cycle plus row pattern.
///
/// Multirate streams carry their cadence explicitly. All fields being 1
/// reproduces the seed's fixed-rate behavior exactly. The *base clock*
/// spans `W·H` cycles for every stage; `row_div` converts a base raster
/// row into a buffer (producer-grid) row, and `row_active`/`col_div`
/// gate which base cycles actually touch the memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ResolvedEntity {
    /// Start cycle of the governing stage.
    pub start: i64,
    /// First row offset accessed below the raster row.
    pub row_offset: u32,
    /// Rows accessed per cycle.
    pub height: u32,
    /// Whether this stream writes (the producer).
    pub is_writer: bool,
    /// Base rows per buffer row (the buffer producer's cumulative `pcy`);
    /// the accessed base row maps to buffer row `⌊y / row_div⌋`.
    pub row_div: u32,
    /// Base columns per buffer column (`pcx`); the stream only touches
    /// memory on base columns with `x % col_div == 0`.
    pub col_div: u32,
    /// The stream only touches memory on base rows with
    /// `y % row_active == 0` (the writer's own `pcy`, a reader's `ccy`).
    pub row_active: u32,
}

impl ResolvedEntity {
    /// A fixed-rate (seed-identical) stream.
    pub fn unit_rate(start: i64, row_offset: u32, height: u32, is_writer: bool) -> ResolvedEntity {
        ResolvedEntity {
            start,
            row_offset,
            height,
            is_writer,
            row_div: 1,
            col_div: 1,
            row_active: 1,
        }
    }
}

/// Physical layout of a buffer for aliasing checks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BufferLayout {
    /// Physical rows allocated (rotation modulus).
    pub phys_rows: u32,
    /// Rows sharing one block (coalescing factor `g`).
    pub rows_per_block: u32,
    /// Blocks one row spans (1 unless rows exceed block capacity).
    pub blocks_per_row: u32,
    /// Capacity of one block, bits.
    pub block_bits: u64,
}

/// A detected over-subscription of a memory block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PortViolation {
    /// Cycle at which it occurs.
    pub cycle: i64,
    /// Row (absolute check) or block index (physical check).
    pub location: u64,
    /// Simultaneous accesses observed.
    pub count: u32,
    /// Ports available.
    pub ports: u32,
    /// Whether the violation is physical (aliasing) rather than absolute.
    pub physical: bool,
}

impl fmt::Display for PortViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} receives {} accesses (> {} ports) at cycle {}",
            if self.physical { "block" } else { "row" },
            self.location,
            self.count,
            self.ports,
            self.cycle
        )
    }
}

/// Checks one buffer's access streams at every transition cycle.
///
/// With `layout = None` the check is at absolute-row granularity (the
/// paper's constraint level); with a layout it is at physical-block
/// granularity including rotation aliasing and column segmentation.
///
/// # Errors
///
/// The first [`PortViolation`] found, scanning cycles in order.
pub fn check_accesses(
    width: u32,
    height: u32,
    pixel_bits: u32,
    entities: &[ResolvedEntity],
    ports: u32,
    layout: Option<&BufferLayout>,
) -> Result<(), PortViolation> {
    // Candidate row advances per entity. The naive set is `k in 0..h`,
    // but between the boundary regions the pattern is periodic: once
    // every entity is active and no window clamps at the bottom edge,
    // advancing every entity's raster row by one leaves the absolute
    // collision pattern unchanged (keys are rows; coincidences depend
    // only on row differences) and rotates physical keys, whose pattern
    // repeats exactly every `phys_rows` advances. So it suffices to scan
    // a head range covering all activations plus one full period, and a
    // tail range covering deactivations and bottom-edge clamping.
    let h = height as i64;
    let w = width as i64;
    // The steady-state period in base rows: the physical rotation repeats
    // every `phys_rows` *buffer* rows, and the cadence pattern repeats
    // every lcm of the entities' row strides — for multirate buffers the
    // period becomes the lcm of the stage rates. (Saturation on hostile
    // rates simply pushes the scan into exhaustive mode below.)
    let cadence = entities.iter().fold(1i64, |acc, e| {
        let stride = lcm(e.row_active as i64, e.row_div as i64);
        lcm(acc, stride)
    });
    let steady_period = layout
        .map(|l| l.phys_rows as i64)
        .unwrap_or(1)
        .saturating_mul(cadence);
    let min_start = entities.iter().map(|e| e.start).min().unwrap_or(0);
    let max_start = entities.iter().map(|e| e.start).max().unwrap_or(0);
    let span_rows = (max_start - min_start) / w + 1;
    let hmax = entities
        .iter()
        .map(|e| (e.row_offset + e.height) as i64)
        .max()
        .unwrap_or(1);
    let margin = span_rows + hmax + steady_period + 2;
    let ks: Vec<i64> = if 2 * margin >= h {
        (0..h).collect()
    } else {
        (0..margin).chain(h - margin..h).collect()
    };
    check_accesses_at(width, height, pixel_bits, entities, ports, layout, &ks)
}

/// [`check_accesses`] over an explicit set of row advances `ks` (the
/// pruned or, in tests, exhaustive transition set).
fn check_accesses_at(
    width: u32,
    height: u32,
    pixel_bits: u32,
    entities: &[ResolvedEntity],
    ports: u32,
    layout: Option<&BufferLayout>,
    ks: &[i64],
) -> Result<(), PortViolation> {
    let w = width as i64;
    let frame = w * height as i64;

    // Candidate transition cycles: entity activation plus the selected
    // row advances; plus column-segment crossings when rows split over
    // blocks.
    let mut cycles: Vec<i64> = Vec::new();
    for e in entities {
        for &k in ks {
            cycles.push(e.start + k * w);
        }
        if let Some(l) = layout {
            if l.blocks_per_row > 1 {
                // Segment crossings happen at buffer columns; a buffer
                // column spans `col_div` base columns.
                let seg_px = (l.block_bits / pixel_bits as u64) as i64 * e.col_div as i64;
                let mut x = seg_px;
                while x < w {
                    for &k in ks {
                        cycles.push(e.start + k * w + x);
                    }
                    x += seg_px;
                }
            }
        }
    }
    cycles.sort_unstable();
    cycles.dedup();

    // Per-cycle accesses: (block key, row, column, is_write). Reads by
    // different streams to the *same address* are merged — the hardware
    // fans out one port's data — while a write never merges with a read.
    let mut accesses: Vec<(u64, i64, i64, bool)> = Vec::new();
    let mut counts: Vec<(u64, u32)> = Vec::new();
    for &t in &cycles {
        accesses.clear();
        counts.clear();
        for e in entities {
            if t < e.start || t >= e.start + frame {
                continue;
            }
            let k = t - e.start;
            let y = k.div_euclid(w);
            let x = k.rem_euclid(w);
            // Cadence gating: multirate streams only touch memory on
            // their active sub-grid.
            if y % e.row_active as i64 != 0 || x % e.col_div as i64 != 0 {
                continue;
            }
            // Buffer-grid coordinates: base row/column divided down to
            // the producer's grid (identity for rate-1 streams).
            let ph = height as i64 / e.row_div as i64;
            let r0 = y / e.row_div as i64;
            let xp = x / e.col_div as i64;
            // Clamped unique rows accessed this cycle.
            let lo = (r0 + e.row_offset as i64).min(ph - 1);
            let hi = (r0 + e.row_offset as i64 + e.height as i64 - 1).min(ph - 1);
            for row in lo..=hi {
                let key = match layout {
                    None => row as u64,
                    Some(l) => {
                        let phys = (row as u64) % l.phys_rows as u64;
                        if l.blocks_per_row > 1 {
                            let seg = (xp as u64 * pixel_bits as u64) / l.block_bits;
                            phys * l.blocks_per_row as u64 + seg
                        } else {
                            phys / l.rows_per_block as u64
                        }
                    }
                };
                let dup = !e.is_writer
                    && accesses
                        .iter()
                        .any(|&(k2, r2, x2, w2)| !w2 && k2 == key && r2 == row && x2 == xp);
                if !dup {
                    accesses.push((key, row, xp, e.is_writer));
                }
            }
        }
        for &(key, ..) in &accesses {
            match counts.iter_mut().find(|(k2, _)| *k2 == key) {
                Some((_, c)) => *c += 1,
                None => counts.push((key, 1)),
            }
        }
        for &(key, c) in &counts {
            if c > ports {
                return Err(PortViolation {
                    cycle: t,
                    location: key,
                    count: c,
                    ports,
                    physical: layout.is_some(),
                });
            }
        }
    }
    Ok(())
}

fn lcm(a: i64, b: i64) -> i64 {
    let g = gcd(a, b);
    (a / g).saturating_mul(b)
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

/// Finds the minimal physical row count (≥ `logical_rows`) for which the
/// buffer passes the physical check, trying up to `logical_rows + 2g + 2`
/// rows.
///
/// # Errors
///
/// Returns the stubborn violation if no slack in range fixes it — which
/// indicates a schedule-level (absolute-row) conflict, not an aliasing
/// artifact.
#[allow(clippy::too_many_arguments)] // mirrors allocate_buffer's flat layout
pub fn required_phys_rows(
    width: u32,
    height: u32,
    pixel_bits: u32,
    entities: &[ResolvedEntity],
    ports: u32,
    logical_rows: u32,
    rows_per_block: u32,
    blocks_per_row: u32,
    block_bits: u64,
) -> Result<u32, PortViolation> {
    let g = rows_per_block.max(1);
    let mut last = None;
    for slack in 0..=(2 * g + 2) {
        // Coalesced buffers rotate block-aligned: a non-multiple-of-g row
        // count would break the "adjacent rows share a block" structure at
        // the wrap-around point.
        let phys_rows = (logical_rows + slack).div_ceil(g) * g;
        let layout = BufferLayout {
            phys_rows,
            rows_per_block: g,
            blocks_per_row,
            block_bits,
        };
        match check_accesses(width, height, pixel_bits, entities, ports, Some(&layout)) {
            Ok(()) => return Ok(phys_rows),
            Err(v) => last = Some(v),
        }
    }
    Err(last.expect("loop ran at least once"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: u32 = 32;
    const H: u32 = 24;
    const PX: u32 = 16;

    fn writer() -> ResolvedEntity {
        ResolvedEntity::unit_rate(0, 0, 1, true)
    }

    fn reader(start: i64, h: u32) -> ResolvedEntity {
        ResolvedEntity::unit_rate(start, 0, h, false)
    }

    #[test]
    fn classic_line_buffer_passes_dual_port() {
        // Consumer at the dependency bound 2W+1 with a 3-row window:
        // absolute rows overlap the writer (2 accesses) — fine on 2 ports.
        let ents = [writer(), reader(2 * W as i64 + 1, 3)];
        check_accesses(W, H, PX, &ents, 2, None).unwrap();
        // Physically: 3 rows rotate; writer+reader share a block: still 2.
        let layout = BufferLayout {
            phys_rows: 3,
            rows_per_block: 1,
            blocks_per_row: 1,
            block_bits: (W * PX) as u64,
        };
        check_accesses(W, H, PX, &ents, 2, Some(&layout)).unwrap();
    }

    #[test]
    fn classic_line_buffer_fails_single_port() {
        let ents = [writer(), reader(2 * W as i64 + 1, 3)];
        let err = check_accesses(W, H, PX, &ents, 1, None).unwrap_err();
        assert!(err.count > 1);
    }

    #[test]
    fn row_disjoint_passes_single_port_absolute_but_aliases() {
        // FixyNN-style: reader delayed 3W (row-disjoint from the writer).
        let ents = [writer(), reader(3 * W as i64, 3)];
        check_accesses(W, H, PX, &ents, 1, None).unwrap();
        // But with only 3 physical rows the writer aliases the oldest
        // reader row.
        let layout = BufferLayout {
            phys_rows: 3,
            rows_per_block: 1,
            blocks_per_row: 1,
            block_bits: (W * PX) as u64,
        };
        let err = check_accesses(W, H, PX, &ents, 1, Some(&layout)).unwrap_err();
        assert!(err.physical);
        // One slack row fixes it.
        let q = required_phys_rows(W, H, PX, &ents, 1, 3, 1, 1, (W * PX) as u64).unwrap();
        assert_eq!(q, 4);
    }

    #[test]
    fn coalesced_fig7_needs_full_window_gap() {
        // g=2, P=2, 3-row window. At D = 2W+1 the writer lands on the
        // consumer's saturated block; at D = 3W it never does.
        let g2 = BufferLayout {
            phys_rows: 4,
            rows_per_block: 2,
            blocks_per_row: 1,
            block_bits: 2 * (W * PX) as u64,
        };
        let tight = [writer(), reader(2 * W as i64 + 1, 3)];
        assert!(check_accesses(W, H, PX, &tight, 2, Some(&g2)).is_err());
        let spaced = [writer(), reader(3 * W as i64, 3)];
        let q = required_phys_rows(W, H, PX, &spaced, 2, 3, 2, 1, g2.block_bits);
        assert!(q.is_ok(), "3W separation must be schedulable: {q:?}");
    }

    #[test]
    fn virtual_ports_counted_per_block() {
        // A 3-row window expressed as two ports (2+1) on g=2 blocks: the
        // two ports alone never exceed 2 accesses on any block.
        let ents = [
            ResolvedEntity::unit_rate(3 * W as i64, 0, 2, false),
            ResolvedEntity::unit_rate(3 * W as i64, 2, 1, false),
        ];
        let layout = BufferLayout {
            phys_rows: 4,
            rows_per_block: 2,
            blocks_per_row: 1,
            block_bits: 2 * (W * PX) as u64,
        };
        check_accesses(W, H, PX, &ents, 2, Some(&layout)).unwrap();
    }

    #[test]
    fn split_rows_detect_segment_conflicts() {
        // Two entities on the same row but different columns: with the
        // row split into two blocks they may or may not collide depending
        // on the segment. Same column -> same segment -> collision on 1
        // port.
        let ents = [writer(), reader(3 * W as i64, 3)];
        let layout = BufferLayout {
            phys_rows: 4,
            rows_per_block: 1,
            blocks_per_row: 2,
            block_bits: ((W / 2) * PX) as u64,
        };
        // Dual-port: fine.
        check_accesses(W, H, PX, &ents, 2, Some(&layout)).unwrap();
    }

    #[test]
    fn bottom_edge_clamping_reduces_rows() {
        // Near the bottom of the image the window clamps; no violation
        // may be reported from re-reading the clamped row.
        let ents = [writer(), reader(2 * W as i64 + 1, 3)];
        check_accesses(W, H, PX, &ents, 2, None).unwrap();
    }

    /// The pruned transition set must agree with the exhaustive per-row
    /// scan: deterministic pseudo-random entity sets on a frame tall
    /// enough that pruning actually drops the middle region.
    #[test]
    fn pruned_scan_matches_exhaustive() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x00c0_ffee_1234_5678);
        let mut next = move || rng.next_u64();
        let (w, h, px) = (32u32, 240u32, 16u32);
        for round in 0..60 {
            let n_ent = 2 + (round % 3);
            let entities: Vec<ResolvedEntity> = (0..n_ent)
                .map(|i| {
                    ResolvedEntity::unit_rate(
                        (next() % 6) as i64 * w as i64 + (next() % 3) as i64,
                        (next() % 3) as u32,
                        1 + (next() % 3) as u32,
                        i == 0,
                    )
                })
                .collect();
            let ports = 1 + (next() % 2) as u32;
            let layouts = [
                None,
                Some(BufferLayout {
                    phys_rows: 2 + (next() % 6) as u32,
                    rows_per_block: 1 + (next() % 2) as u32,
                    blocks_per_row: 1,
                    block_bits: 2 * (w * px) as u64,
                }),
            ];
            for layout in &layouts {
                let pruned = check_accesses(w, h, px, &entities, ports, layout.as_ref());
                let all: Vec<i64> = (0..h as i64).collect();
                let full = check_accesses_at(w, h, px, &entities, ports, layout.as_ref(), &all);
                assert_eq!(
                    pruned, full,
                    "pruning changed the verdict for {entities:?} ports={ports} layout={layout:?}"
                );
            }
        }
    }

    #[test]
    fn stubborn_violation_reported() {
        // Two unsynchronized readers overlapping on a single port can
        // never be fixed by slack.
        let ents = [reader(0, 2), reader(1, 2)];
        let err = required_phys_rows(W, H, PX, &ents, 1, 2, 1, 1, (W * PX) as u64);
        assert!(err.is_err());
    }
}
