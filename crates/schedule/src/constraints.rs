//! Constraint formulation: Equ. 1b data dependencies, Equ. 1c memory
//! contention via access sets, the set-counting → arithmetic transformation
//! (Equ. 8–12), and constraint pruning (Sec. 5.4).
//!
//! # The pair-disjointness constraint, exactly
//!
//! With floor-based row semantics — stage `i` at cycle `t` is at raster
//! row `y_i = ⌊(t - S_i) / W⌋` and accesses buffer rows
//! `[y_i + off_i, y_i + off_i + h_i - 1]` — the requirement that entity
//! `i`'s rows stay *strictly behind* entity `j`'s rows at every cycle is
//!
//! ```text
//! ∀t  y_i + off_i + h_i - 1 < y_j + off_j
//! ```
//!
//! Since `y_j - y_i` over all `t` ranges exactly over
//! `{⌊D/W⌋, ⌈D/W⌉}` where `D = S_i - S_j`, the condition holds for all
//! `t` **iff** `⌊D/W⌋ ≥ off_i + h_i - off_j`, i.e. the linear constraint
//!
//! ```text
//! S_i - S_j ≥ W · (off_i + h_i - off_j)
//! ```
//!
//! This matches the paper's Equ. 12 (with the trailing stage's stencil
//! height; see DESIGN.md §2 on the subscript) and, unlike the ceiling
//! derivation in the paper, is exact rather than merely sufficient — no
//! optimality is lost.
//!
//! # Multirate stages and the common base clock
//!
//! With per-stage rates, every stage still spans the same `W·H` base
//! cycles; a stage at cumulative scale `(cx, cy)` merely computes on the
//! cadence sub-grid `y_b % cy == 0 ∧ x_b % cx == 0`. The producer `p` of a
//! buffer (scale `(pcx, pcy)`) emits one buffer row per **row period**
//! `P_p = pcy·W` base cycles, and — the key identity — *every* accessor of
//! that buffer advances through producer rows as `⌊(t − S) / P_p⌋ + off`:
//! the writer by construction, and each reader because its SRA base row is
//! `r0 = ⌊y_b / pcy⌋ = ⌊(t − S_c) / P_p⌋`. So the entire formulation above
//! holds verbatim with `W` replaced by the buffer's row period `P_p`, the
//! constraints stay linear [`DiffGe`]s, and the simplex is untouched.
//! Rate-1 pipelines have `P_p = W` everywhere and produce bit-identical
//! constraint systems.

use crate::entity::{buffer_entities, AccessEntity};
use imagen_ilp::DiffSystem;
use imagen_ir::{Dag, StageId};
use std::fmt;

/// A difference constraint `S_a - S_b >= k` over stage start cycles.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DiffGe {
    /// Left stage (the trailing one in contention constraints).
    pub a: StageId,
    /// Right stage (the leading one).
    pub b: StageId,
    /// Required minimum gap in cycles.
    pub k: i64,
}

impl fmt::Display for DiffGe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "S[{}] - S[{}] >= {}",
            self.a.index(),
            self.b.index(),
            self.k
        )
    }
}

/// An OR-group: at least one member constraint must hold (paper
/// Equ. 7a–7c). Groups with a single member are effectively hard.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OrGroup {
    /// The alternatives.
    pub alternatives: Vec<DiffGe>,
    /// Which buffer (producer stage) generated this group.
    pub buffer: StageId,
}

/// The assembled constraint system for a pipeline.
#[derive(Clone, Debug)]
pub struct ConstraintSet {
    /// Always-on constraints: data dependencies, sync-group equalities
    /// (represented as two opposing `>=`), and collapsed OR-groups.
    pub hard: Vec<DiffGe>,
    /// Remaining OR-groups with two or more live alternatives.
    pub groups: Vec<OrGroup>,
    /// Statistics for the Sec. 8.2 experiments.
    pub stats: FormulationStats,
}

/// Formulation statistics (constraint pruning effectiveness, Sec. 8.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FormulationStats {
    /// Data-dependency constraints emitted.
    pub dependencies: usize,
    /// (P+1)-combinations examined.
    pub combinations: usize,
    /// Raw OR alternatives before pruning.
    pub alternatives_raw: usize,
    /// Alternatives dropped as infeasible (contradict dependencies).
    pub pruned_infeasible: usize,
    /// Alternatives dropped as dominated (implied by a more relaxed one).
    pub pruned_dominated: usize,
    /// OR-groups that collapsed to a single alternative.
    pub groups_collapsed: usize,
    /// OR-groups still open after pruning (drive sub-problem search).
    pub groups_open: usize,
}

/// Options controlling constraint generation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FormulationOptions {
    /// Apply Sec. 5.4 constraint pruning (on by default; the Sec. 8.2
    /// ablation turns it off).
    pub pruning: bool,
}

impl Default for FormulationOptions {
    fn default() -> Self {
        FormulationOptions { pruning: true }
    }
}

/// Per-stage memory parameters needed by the formulation.
pub trait BufferParams {
    /// Port count of the blocks under stage `p`'s buffer.
    fn ports(&self, p: StageId) -> u32;
    /// Coalescing factor `g` (rows per block) of stage `p`'s buffer.
    fn coalesce(&self, p: StageId) -> u32;
}

/// Data-dependency constant for an edge window (Equ. 1b, generalized):
/// the consumer must start `newest_row · P + 1` base cycles after the
/// producer, where `row_period` is the producer's row period `pcy·W`
/// (just `W` for rate-1 stages). Consumer pixel `(0,0)` needs producer
/// pixel `(0, newest_row)`, produced at `S_p + newest_row·P`; every later
/// consumer pixel's demand cancels exactly against its own base-clock
/// delay (down-readers because `ccy·W = fy·P`, up-readers because
/// `⌊y/fy⌋·P ≤ (y/fy)·P = ccy·y·W`), so this single constant is exact
/// for the whole frame.
pub fn dependency_gap(window: &imagen_ir::Window, row_period: i64) -> i64 {
    window.newest_row() as i64 * row_period + 1
}

/// Per-stage buffer row periods in base cycles: `pcy · W` for a stage at
/// cumulative scale `(pcx, pcy)`. Index by `StageId::index`.
pub fn row_periods(dag: &Dag, width: u32) -> Vec<i64> {
    dag.stage_scales()
        .iter()
        .map(|&(_, cy)| cy as i64 * width as i64)
        .collect()
}

/// The memory-spec-independent part of a formulation: data dependencies
/// (Equ. 1b), sync-group equalities, and the longest-path bounds they
/// imply.
///
/// Edge *windows* and sync groups are invariant under the line-coalescing
/// rewrite (which only re-partitions read ports), so a skeleton built from
/// the base DAG is valid for every per-stage DP/DPLC memory configuration
/// of that DAG. Design-space exploration builds it once per DAG and
/// re-runs only [`formulate_with`] per design point.
#[derive(Clone, Debug)]
pub struct ConstraintSkeleton {
    /// Dependency + sync-equality constraints (always hard).
    pub hard: Vec<DiffGe>,
    /// Longest-path bounds implied by `hard`.
    pub bounds: DiffBounds,
    /// How many of `hard` are data dependencies (for statistics).
    dependencies: usize,
}

/// Builds the spec-independent constraint skeleton for `dag` at image
/// width `width` (the cacheable front half of [`formulate`]).
pub fn formulate_skeleton(dag: &Dag, width: u32) -> ConstraintSkeleton {
    let mut hard: Vec<DiffGe> = Vec::new();
    let mut dependencies = 0usize;
    let periods = row_periods(dag, width);

    // --- Data dependencies (Equ. 1b) --------------------------------
    for (_, e) in dag.edges() {
        hard.push(DiffGe {
            a: e.consumer(),
            b: e.producer(),
            k: dependency_gap(e.window(), periods[e.producer().index()]),
        });
        dependencies += 1;
    }

    // --- Sync-group equalities (linearization relays) ---------------
    let mut groups_seen: Vec<(u32, StageId)> = Vec::new();
    for (id, s) in dag.stages() {
        if let Some(g) = s.sync_group() {
            if let Some((_, rep)) = groups_seen.iter().find(|(gg, _)| *gg == g) {
                hard.push(DiffGe {
                    a: id,
                    b: *rep,
                    k: 0,
                });
                hard.push(DiffGe {
                    a: *rep,
                    b: id,
                    k: 0,
                });
            } else {
                groups_seen.push((g, id));
            }
        }
    }

    // Longest-path lower bounds on start-cycle differences implied by the
    // hard constraints; used by both pruning rules.
    let bounds = DiffBounds::new(dag.num_stages(), &hard);
    ConstraintSkeleton {
        hard,
        bounds,
        dependencies,
    }
}

/// Builds the full constraint system for `dag` at image width `width`.
pub fn formulate(
    dag: &Dag,
    width: u32,
    params: &impl BufferParams,
    opts: FormulationOptions,
) -> ConstraintSet {
    formulate_with(dag, width, &formulate_skeleton(dag, width), params, opts)
}

/// Completes a [`ConstraintSkeleton`] with the memory-config-dependent
/// contention constraints (Equ. 1c) for `dag`.
///
/// `dag` may be the coalesced working copy of the DAG the skeleton was
/// built from: the rewrite changes read ports but neither windows nor
/// sync groups, so the skeleton stays exact.
pub fn formulate_with(
    dag: &Dag,
    width: u32,
    skeleton: &ConstraintSkeleton,
    params: &impl BufferParams,
    opts: FormulationOptions,
) -> ConstraintSet {
    let periods = row_periods(dag, width);
    let mut hard = skeleton.hard.clone();
    let bounds = &skeleton.bounds;
    let mut stats = FormulationStats {
        dependencies: skeleton.dependencies,
        ..FormulationStats::default()
    };

    // --- Contention (Equ. 1c) ----------------------------------------
    let mut groups: Vec<OrGroup> = Vec::new();
    for p in dag.buffered_stages() {
        let ports = params.ports(p);
        let g = params.coalesce(p);
        let entities = buffer_entities(dag, p);
        // All accessors of this buffer walk producer rows with the same
        // period (module docs), so the seed's width becomes the buffer's
        // row period.
        let w = periods[p.index()];

        if g > 1 {
            // Coalesced buffer: deterministic pairwise constraints (see
            // module docs of `plan`): the writer must clear each consumer's
            // whole window by one row; distinct consumers must be at least
            // row-disjoint (block-disjoint when 2(g-1) > P).
            let block_gap = if 2 * (g - 1) > ports { g as i64 } else { 1 };
            for (i, a) in entities.iter().enumerate() {
                for b in entities.iter().skip(i + 1) {
                    push_coalesced_pair(&mut hard, a, b, w, block_gap, bounds);
                }
            }
            continue;
        }

        // Un-coalesced: (P+1)-combination machinery (Equ. 5).
        let n = entities.len();
        let k = ports as usize + 1;
        if n < k {
            continue;
        }
        for combo in combinations(n, k) {
            stats.combinations += 1;
            let mut alternatives = Vec::new();
            for &i in &combo {
                for &j in &combo {
                    if i == j {
                        continue;
                    }
                    let (ei, ej) = (&entities[i], &entities[j]);
                    let gap = ei.top_offset() as i64 + 1 - ej.row_offset as i64;
                    stats.alternatives_raw += 1;
                    if ei.stage == ej.stage {
                        // Same physical stage: statically decided.
                        if gap <= 0 {
                            // Already disjoint; whole combination satisfied.
                            alternatives.clear();
                            alternatives.push(DiffGe {
                                a: ei.stage,
                                b: ej.stage,
                                k: 0,
                            });
                            break;
                        }
                        stats.pruned_infeasible += 1;
                        continue;
                    }
                    let c = DiffGe {
                        a: ei.stage,
                        b: ej.stage,
                        k: w * gap,
                    };
                    if opts.pruning && bounds.is_infeasible(&c) {
                        stats.pruned_infeasible += 1;
                        continue;
                    }
                    alternatives.push(c);
                }
                if alternatives.len() == 1 && alternatives[0].k == 0 {
                    break; // statically satisfied combination
                }
            }
            if alternatives.len() == 1 && alternatives[0].k == 0 {
                continue;
            }
            if opts.pruning {
                let before = alternatives.len();
                alternatives = prune_dominated(alternatives, bounds);
                stats.pruned_dominated += before - alternatives.len();
            }
            match alternatives.len() {
                0 => {
                    // Every alternative contradicted the dependencies: the
                    // combination is unsatisfiable — surface it as an open
                    // group so the solver reports infeasibility honestly.
                    groups.push(OrGroup {
                        alternatives,
                        buffer: p,
                    });
                    stats.groups_open += 1;
                }
                1 => {
                    hard.push(alternatives[0]);
                    stats.groups_collapsed += 1;
                }
                _ => {
                    stats.groups_open += 1;
                    groups.push(OrGroup {
                        alternatives,
                        buffer: p,
                    });
                }
            }
        }
    }

    ConstraintSet {
        hard,
        groups,
        stats,
    }
}

fn push_coalesced_pair(
    hard: &mut Vec<DiffGe>,
    a: &AccessEntity,
    b: &AccessEntity,
    w: i64,
    block_gap: i64,
    bounds: &DiffBounds,
) {
    if a.stage == b.stage {
        return; // virtual siblings partition the window statically
    }
    // Writer–reader: the writer must stay a full row past the reader's
    // newest block row; reader–reader: (block-)disjoint, trailing form.
    // Emit the orientation consistent with the dependency bounds.
    let mk = |trail: &AccessEntity, lead: &AccessEntity| -> DiffGe {
        let extra = if lead.is_writer || trail.is_writer {
            1
        } else {
            block_gap
        };
        DiffGe {
            a: trail.stage,
            b: lead.stage,
            k: w * (trail.top_offset() as i64 + extra - lead.row_offset as i64),
        }
    };
    let ab = mk(a, b);
    let ba = mk(b, a);
    let ab_bad = bounds.is_infeasible(&ab);
    let ba_bad = bounds.is_infeasible(&ba);
    match (ab_bad, ba_bad) {
        (false, true) => hard.push(ab),
        (true, false) => hard.push(ba),
        // Ambiguous orientation: order by existing dependency direction
        // (b reachable from a means a leads), defaulting to `ab`.
        _ => {
            if bounds.gap(b.stage, a.stage) > i64::MIN {
                hard.push(ba)
            } else {
                hard.push(ab)
            }
        }
    }
}

/// Longest-path lower bounds `S_a - S_b >= gap(a, b)` implied by a set of
/// hard difference constraints.
#[derive(Clone, Debug)]
pub struct DiffBounds {
    n: usize,
    /// `gap[a * n + b]`; `i64::MIN` when unconstrained.
    gap: Vec<i64>,
}

impl DiffBounds {
    /// Computes all-pairs longest paths over the constraint graph.
    pub fn new(n: usize, hard: &[DiffGe]) -> DiffBounds {
        let mut gap = vec![i64::MIN; n * n];
        for i in 0..n {
            gap[i * n + i] = 0;
        }
        for c in hard {
            let idx = c.a.index() * n + c.b.index();
            if c.k > gap[idx] {
                gap[idx] = c.k;
            }
        }
        // Floyd–Warshall, max-plus semiring.
        for m in 0..n {
            for i in 0..n {
                let gim = gap[i * n + m];
                if gim == i64::MIN {
                    continue;
                }
                for j in 0..n {
                    let gmj = gap[m * n + j];
                    if gmj == i64::MIN {
                        continue;
                    }
                    let cand = gim.saturating_add(gmj);
                    if cand > gap[i * n + j] {
                        gap[i * n + j] = cand;
                    }
                }
            }
        }
        DiffBounds { n, gap }
    }

    /// Lower bound on `S_a - S_b` (`i64::MIN` when unconstrained).
    pub fn gap(&self, a: StageId, b: StageId) -> i64 {
        self.gap[a.index() * self.n + b.index()]
    }

    /// Whether constraint `c` contradicts the implied bounds: if the
    /// system forces `S_b - S_a >= m` then `S_a - S_b <= -m`, so `c`
    /// (requiring `S_a - S_b >= k`) is unsatisfiable when `-m < k`.
    pub fn is_infeasible(&self, c: &DiffGe) -> bool {
        let m = self.gap(c.b, c.a);
        m != i64::MIN && -m < c.k
    }

    /// Whether constraint `by` implies constraint `c`:
    /// `S_a ≥ S_x + gap(a,x)` and `S_y ≥ S_b + gap(y,b)` chain with
    /// `S_x - S_y >= by.k` to give `S_a - S_b >= gap(a,x) + by.k + gap(y,b)`.
    pub fn implies(&self, by: &DiffGe, c: &DiffGe) -> bool {
        let g1 = self.gap(c.a, by.a);
        let g2 = self.gap(by.b, c.b);
        if g1 == i64::MIN || g2 == i64::MIN {
            return false;
        }
        g1.saturating_add(by.k).saturating_add(g2) >= c.k
    }
}

/// Removes alternatives implied by a more relaxed sibling (Sec. 5.4: in an
/// OR, a constraint implied by another is the *stricter* one and can be
/// dropped without losing optimality).
fn prune_dominated(mut alts: Vec<DiffGe>, bounds: &DiffBounds) -> Vec<DiffGe> {
    alts.sort_by_key(|c| (c.a, c.b, c.k));
    alts.dedup();
    let mut keep = vec![true; alts.len()];
    for i in 0..alts.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..alts.len() {
            if i == j || !keep[j] {
                continue;
            }
            // If alternative j implies alternative i, any schedule chosen
            // via j also satisfies i, so j is redundant as an alternative.
            if bounds.implies(&alts[j], &alts[i]) {
                keep[j] = false;
            }
        }
    }
    alts.into_iter()
        .zip(keep)
        .filter_map(|(a, k)| k.then_some(a))
        .collect()
}

/// All `k`-subsets of `0..n` (lexicographic).
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(k);
    fn rec(start: usize, n: usize, k: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            if n - i < k - cur.len() {
                break;
            }
            cur.push(i);
            rec(i + 1, n, k, cur, out);
            cur.pop();
        }
    }
    rec(0, n, k, &mut cur, &mut out);
    out
}

/// Feasibility check of a concrete schedule against a constraint set
/// (hard constraints and at least one alternative per group).
pub fn schedule_satisfies(set: &ConstraintSet, starts: &[i64]) -> bool {
    let ok = |c: &DiffGe| starts[c.a.index()] - starts[c.b.index()] >= c.k;
    set.hard.iter().all(ok) && set.groups.iter().all(|g| g.alternatives.iter().any(ok))
}

/// Builds a [`DiffSystem`] from hard constraints plus chosen alternatives
/// (for ASAP scheduling and fast feasibility checks).
pub fn to_diff_system(n: usize, hard: &[DiffGe], chosen: &[DiffGe]) -> DiffSystem {
    let mut sys = DiffSystem::new(n);
    for c in hard.iter().chain(chosen) {
        sys.add_ge(c.a.index(), c.b.index(), c.k);
    }
    sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagen_ir::Expr;

    struct Uniform {
        ports: u32,
        g: u32,
    }
    impl BufferParams for Uniform {
        fn ports(&self, _: StageId) -> u32 {
            self.ports
        }
        fn coalesce(&self, _: StageId) -> u32 {
            self.g
        }
    }

    fn box3(slot: usize) -> Expr {
        Expr::sum((0..9).map(move |i| Expr::tap(slot, i % 3 - 1, i / 3 - 1)))
    }

    /// Fig. 6 pipeline: K0 -> K1 -> K2, K2 also reads K0.
    fn fig6() -> Dag {
        let mut dag = Dag::new("fig6");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        let k2 = dag
            .add_stage(
                "K2",
                &[k0, k1],
                Expr::bin(
                    imagen_ir::BinOp::Add,
                    Expr::sum((0..4).map(|i| Expr::tap(0, i % 2, i / 2))),
                    box3(1),
                ),
            )
            .unwrap();
        dag.mark_output(k2);
        dag
    }

    #[test]
    fn dependency_gaps_match_paper() {
        // 3x3 window: (SH-1)*W + 1 = 2W + 1.
        let dag = fig6();
        let set = formulate(
            &dag,
            480,
            &Uniform { ports: 2, g: 1 },
            FormulationOptions::default(),
        );
        assert!(set
            .hard
            .iter()
            .any(|c| c.a.index() == 1 && c.b.index() == 0 && c.k == 961));
    }

    #[test]
    fn fig6_pruning_collapses_to_single_constraint() {
        // The paper's worked example: the three OR-ed pair constraints on
        // K0's buffer reduce to the single writer-vs-K2 constraint
        // (Equ. 7b survives; 7a and 7c are dominated).
        let dag = fig6();
        let set = formulate(
            &dag,
            480,
            &Uniform { ports: 2, g: 1 },
            FormulationOptions::default(),
        );
        assert_eq!(
            set.stats.combinations, 1,
            "one 3-combination on K0's buffer"
        );
        assert_eq!(set.groups.len(), 0, "group fully collapsed");
        assert_eq!(set.stats.groups_collapsed, 1);
        // The surviving constraint forces K2 behind K0's writer. K2's
        // 2-row window on K0 sits at lag 1 (it aligns with K2's 3-row
        // window on K1), so its newest row offset is 2 and the gap is 3W.
        assert!(set
            .hard
            .iter()
            .any(|c| c.a.index() == 2 && c.b.index() == 0 && c.k == 3 * 480));
    }

    #[test]
    fn pruning_off_keeps_group_open() {
        let dag = fig6();
        let set = formulate(
            &dag,
            480,
            &Uniform { ports: 2, g: 1 },
            FormulationOptions { pruning: false },
        );
        // Without pruning the combination keeps multiple feasible-looking
        // alternatives (writer-behind-reader ones are syntactically kept).
        assert_eq!(set.groups.len(), 1);
        assert!(set.groups[0].alternatives.len() >= 2);
    }

    #[test]
    fn single_port_all_pairs_constrained() {
        // FixyNN mode: P=1 -> every pair of accessors forms a combination.
        let dag = fig6();
        let set = formulate(
            &dag,
            480,
            &Uniform { ports: 1, g: 1 },
            FormulationOptions::default(),
        );
        // K0's buffer has 3 entities -> 3 pairs; K1's has 2 -> 1 pair.
        assert_eq!(set.stats.combinations, 4);
        // All collapse: the only feasible orientation is reader-behind-writer.
        assert_eq!(set.groups.len(), 0);
        // Writer/K1 pair on K0's buffer: S_1 - S_0 >= 3W.
        assert!(set
            .hard
            .iter()
            .any(|c| c.a.index() == 1 && c.b.index() == 0 && c.k == 3 * 480));
    }

    #[test]
    fn dual_port_single_consumer_unconstrained() {
        // Writer + one reader on dual-port blocks: no combination of size
        // 3 exists; only the dependency remains.
        let mut dag = Dag::new("chain");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        dag.mark_output(k1);
        let set = formulate(
            &dag,
            480,
            &Uniform { ports: 2, g: 1 },
            FormulationOptions::default(),
        );
        assert_eq!(set.stats.combinations, 0);
        assert_eq!(set.hard.len(), 1, "just the dependency");
    }

    #[test]
    fn coalesced_writer_gap_is_full_window() {
        // g=2: writer must clear the reader's whole 3-row window: D >= 3W.
        let mut dag = Dag::new("chain");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        dag.mark_output(k1);
        imagen_ir::apply_line_coalescing(&mut dag, |_| imagen_ir::CoalesceFactor::new(2));
        let set = formulate(
            &dag,
            480,
            &Uniform { ports: 2, g: 2 },
            FormulationOptions::default(),
        );
        // Strongest writer constraint: trailing reader port covering rows
        // [2,2]: S_1 - S_0 >= (2 + 1) * W = 3W.
        let max_k = set
            .hard
            .iter()
            .filter(|c| c.a.index() == 1 && c.b.index() == 0)
            .map(|c| c.k)
            .max()
            .unwrap();
        assert_eq!(max_k, 3 * 480);
    }

    #[test]
    fn bounds_and_implication() {
        let dag = fig6();
        let set = formulate(
            &dag,
            480,
            &Uniform { ports: 2, g: 1 },
            FormulationOptions::default(),
        );
        let bounds = DiffBounds::new(dag.num_stages(), &set.hard);
        // Path K0 -> K1 -> K2 composes: S2 - S0 >= 961 + 961.
        assert!(bounds.gap(StageId::from_index(2), StageId::from_index(0)) >= 1922);
        // Writer never trails its consumer.
        let bad = DiffGe {
            a: StageId::from_index(0),
            b: StageId::from_index(2),
            k: 480,
        };
        assert!(bounds.is_infeasible(&bad));
    }

    #[test]
    fn combination_enumeration() {
        assert_eq!(combinations(4, 3).len(), 4);
        assert_eq!(combinations(5, 2).len(), 10);
        assert_eq!(combinations(3, 3), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn schedule_satisfaction_checker() {
        let dag = fig6();
        let set = formulate(
            &dag,
            480,
            &Uniform { ports: 2, g: 1 },
            FormulationOptions::default(),
        );
        // The paper-optimal schedule for Fig. 6 style pipelines.
        assert!(schedule_satisfies(&set, &[0, 961, 1922]));
        assert!(!schedule_satisfies(&set, &[0, 961, 960]));
    }
}
