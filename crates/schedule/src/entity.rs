//! Access entities: who touches a line buffer, and with what row pattern.
//!
//! The contention formulation (paper Sec. 5.3) reasons about the *set of
//! stages accessing a line buffer*. In this implementation the unit is an
//! [`AccessEntity`]: the buffer's writer, or one [`imagen_ir::ReadPort`]
//! of one consumer edge (a paper "virtual stage" after coalescing).
//!
//! Entities from different stages that are start-synchronized *and* read
//! the same rows every cycle (Darkroom's relay + mirrored consumer) merge
//! into one entity: identical addresses share a physical port, which is
//! precisely why linearization works with dual-port memories.

use imagen_ir::{Dag, EdgeId, StageId};

/// One access stream into a line buffer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AccessEntity {
    /// Stage whose start cycle paces this stream (representative stage for
    /// merged streams).
    pub stage: StageId,
    /// All stages sharing the stream (≥ 1; > 1 only for merged relays).
    pub members: Vec<StageId>,
    /// First row offset below the stage's raster row that is accessed.
    pub row_offset: u32,
    /// Number of consecutive rows accessed each cycle.
    pub height: u32,
    /// Whether this is the producer's write stream.
    pub is_writer: bool,
    /// Originating edge (readers only).
    pub edge: Option<EdgeId>,
}

impl AccessEntity {
    /// Highest row offset accessed (`row_offset + height - 1`).
    pub fn top_offset(&self) -> u32 {
        self.row_offset + self.height - 1
    }
}

/// Collects the access entities of producer `p`'s line buffer: the writer
/// plus one entity per read port of every consumer edge, with synchronized
/// identical readers merged.
pub fn buffer_entities(dag: &Dag, p: StageId) -> Vec<AccessEntity> {
    let mut entities = vec![AccessEntity {
        stage: p,
        members: vec![p],
        row_offset: 0,
        height: 1,
        is_writer: true,
        edge: None,
    }];

    for (eid, e) in dag.consumer_edges(p) {
        for port in e.ports() {
            let consumer = e.consumer();
            let group = dag.stage(consumer).sync_group();
            // Merge with an existing reader when both are in the same sync
            // group and read the same rows.
            let merged = group.is_some()
                && entities.iter_mut().any(|ent| {
                    if ent.is_writer
                        || ent.row_offset != port.row_offset
                        || ent.height != port.height
                    {
                        return false;
                    }
                    let same_group = ent
                        .members
                        .iter()
                        .all(|m| dag.stage(*m).sync_group() == group);
                    if same_group && !ent.members.contains(&consumer) {
                        ent.members.push(consumer);
                        true
                    } else {
                        same_group && ent.members.contains(&consumer)
                    }
                });
            if !merged {
                entities.push(AccessEntity {
                    stage: consumer,
                    members: vec![consumer],
                    row_offset: port.row_offset,
                    height: port.height,
                    is_writer: false,
                    edge: Some(eid),
                });
            }
        }
    }
    entities
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagen_ir::{linearize, Expr};

    fn box3(slot: usize) -> Expr {
        Expr::sum((0..9).map(move |i| Expr::tap(slot, i % 3 - 1, i / 3 - 1)))
    }

    #[test]
    fn writer_plus_readers() {
        let mut dag = Dag::new("t");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        let k2 = dag.add_stage("K2", &[k0], box3(0)).unwrap();
        let k3 = dag
            .add_stage(
                "K3",
                &[k1, k2],
                Expr::bin(
                    imagen_ir::BinOp::Add,
                    Expr::tap(0, 0, 0),
                    Expr::tap(1, 0, 0),
                ),
            )
            .unwrap();
        dag.mark_output(k3);
        let ents = buffer_entities(&dag, k0);
        assert_eq!(ents.len(), 3, "writer + two independent readers");
        assert!(ents[0].is_writer);
        assert_eq!(ents[0].height, 1);
        assert_eq!(ents[1].height, 3);
        assert_eq!(ents[1].top_offset(), 2);
    }

    #[test]
    fn synchronized_relays_merge() {
        // Linearize a two-consumer pipeline; the relay and its mirrored
        // sibling must merge into one entity on the shared buffer.
        let mut dag = Dag::new("t");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        let k2 = dag
            .add_stage(
                "K2",
                &[k0, k1],
                Expr::bin(
                    imagen_ir::BinOp::Add,
                    Expr::tap(0, 0, 0),
                    Expr::tap(1, 0, 0),
                ),
            )
            .unwrap();
        dag.mark_output(k2);
        let lin = linearize(&dag).unwrap();
        let k0_new = lin.stage_map[0];
        let ents = buffer_entities(&lin.dag, k0_new);
        // K0's buffer: writer + merged {K1, relay}.
        assert_eq!(
            ents.len(),
            2,
            "relay merged with mirrored consumer: {ents:?}"
        );
        let reader = &ents[1];
        assert_eq!(reader.members.len(), 2);
    }

    #[test]
    fn coalesced_ports_become_entities() {
        let mut dag = Dag::new("t");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        dag.mark_output(k1);
        imagen_ir::apply_line_coalescing(&mut dag, |_| imagen_ir::CoalesceFactor::new(2));
        let ents = buffer_entities(&dag, k0);
        assert_eq!(ents.len(), 3, "writer + 2 virtual stages");
        assert_eq!(ents[1].height, 2);
        assert_eq!(ents[2].height, 1);
        assert_eq!(ents[2].row_offset, 2);
        assert_eq!(ents[1].stage, ents[2].stage, "virtual stages share a stage");
    }
}
