//! # imagen-schedule
//!
//! The core contribution of the [ImaGen] paper (ISCA 2023): a constrained
//! optimization that schedules line-buffered image-processing pipelines
//! for minimum on-chip memory at full (one pixel per cycle) throughput.
//!
//! * [`constraints`] — Equ. 1b data dependencies; Equ. 1c memory
//!   contention expressed through access sets and transformed into exact
//!   linear difference constraints (Equ. 8–12); Sec. 5.4 constraint
//!   pruning over the DAG's partial order.
//! * [`solve_schedule`] — the ILP (Sec. 5.5) plus depth-first resolution
//!   of surviving OR-groups.
//! * [`checker`] — exact per-buffer port-discipline verification at both
//!   absolute-row and physical-block granularity (rotation aliasing).
//! * [`plan_design`] — the full Fig. 5 "Optimizer": coalescing rewrite,
//!   formulation, solving, buffer sizing (Equ. 2), block allocation and
//!   pricing into a [`imagen_mem::Design`].
//!
//! [ImaGen]: https://arxiv.org/abs/2304.03352

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod constraints;
mod entity;
mod plan;
mod solve;

pub use constraints::{
    dependency_gap, formulate, formulate_skeleton, formulate_with, row_periods,
    schedule_satisfies, BufferParams, ConstraintSet, ConstraintSkeleton, DiffBounds, DiffGe,
    FormulationOptions, FormulationStats, OrGroup,
};
pub use entity::{buffer_entities, AccessEntity};
pub use plan::{
    plan_design, plan_design_with, realize_design, resolve_entities, Plan, PlanError,
    SpecBufferParams,
};
pub use solve::{
    asap_schedule, size_buffers, solve_schedule, Schedule, ScheduleError, ScheduleOptions,
    SizeObjective, SolveReport,
};
