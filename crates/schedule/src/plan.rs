//! The end-to-end planner: DAG + geometry + memory spec → scheduled,
//! allocated, priced [`Design`].
//!
//! This is the "Optimizer" box of the paper's Fig. 5: line coalescing
//! (when the spec allows it), constraint formulation, ILP solving, buffer
//! sizing, physical block allocation (with aliasing slack, DESIGN.md §4)
//! and analytic access statistics for the power model. The cycle-level
//! simulator (`imagen-sim`) independently replays the result and verifies
//! throughput, port discipline and functional correctness.

use crate::checker::{check_accesses, required_phys_rows, PortViolation, ResolvedEntity};
use crate::constraints::{
    formulate_skeleton, formulate_with, BufferParams, ConstraintSkeleton, FormulationOptions,
};
use crate::entity::buffer_entities;
use crate::solve::{solve_schedule, Schedule, ScheduleError, ScheduleOptions};
use imagen_ir::{apply_line_coalescing, CoalesceFactor, Dag, StageId, StageKind};
use imagen_mem::{
    allocate_buffer, Design, DesignStyle, ImageGeometry, MemorySpec, PeModel, CLOCK_MHZ,
};
use std::fmt;

/// Planner failure.
#[derive(Clone, PartialEq, Debug)]
pub enum PlanError {
    /// Scheduling failed.
    Schedule(ScheduleError),
    /// The schedule violates port discipline at absolute-row level — a
    /// formulation bug (surfaced rather than silently repaired).
    ScheduleViolation {
        /// The offending buffer's producer stage.
        buffer: StageId,
        /// The violation.
        violation: PortViolation,
    },
    /// No physical row count within the slack budget satisfies the port
    /// discipline (also indicates a formulation inconsistency).
    AliasingUnrepairable {
        /// The offending buffer's producer stage.
        buffer: StageId,
        /// The stubborn violation.
        violation: PortViolation,
    },
    /// A stage's cumulative rate does not divide the frame extents: a
    /// `downsample(2,2)` chain on a 15-pixel-wide frame has no integral
    /// iteration domain. Multirate planning requires exact divisibility.
    IndivisibleExtent {
        /// The offending stage.
        stage: StageId,
        /// Cumulative horizontal factor.
        fx: u64,
        /// Cumulative vertical factor.
        fy: u64,
        /// Frame width.
        width: u32,
        /// Frame height.
        height: u32,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Schedule(e) => write!(f, "{e}"),
            PlanError::ScheduleViolation { buffer, violation } => write!(
                f,
                "schedule violates ports on buffer of stage {}: {violation}",
                buffer.index()
            ),
            PlanError::AliasingUnrepairable { buffer, violation } => write!(
                f,
                "cannot repair aliasing on buffer of stage {}: {violation}",
                buffer.index()
            ),
            PlanError::IndivisibleExtent {
                stage,
                fx,
                fy,
                width,
                height,
            } => write!(
                f,
                "stage {} at cumulative rate ({fx},{fy}) does not divide the {width}x{height} frame",
                stage.index()
            ),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<ScheduleError> for PlanError {
    fn from(e: ScheduleError) -> Self {
        PlanError::Schedule(e)
    }
}

/// A complete plan: the working DAG (with coalescing rewrites applied),
/// the schedule, and the priced design.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Working DAG (clone of the input, possibly with coalesced edges).
    pub dag: Dag,
    /// The optimal schedule.
    pub schedule: Schedule,
    /// The allocated and priced design.
    pub design: Design,
}

/// [`BufferParams`] view of a [`MemorySpec`] at a given geometry — the
/// parameter source the planner itself formulates with. Public so
/// out-of-crate checkers (the static analyzer) can re-derive the exact
/// constraint system a plan was solved against.
pub struct SpecBufferParams<'a> {
    /// The memory spec supplying ports and coalesce factors.
    pub spec: &'a MemorySpec,
    /// The frame geometry coalesce factors depend on.
    pub geom: &'a ImageGeometry,
}

impl BufferParams for SpecBufferParams<'_> {
    fn ports(&self, p: StageId) -> u32 {
        self.spec.ports_for(p.index())
    }
    fn coalesce(&self, p: StageId) -> u32 {
        self.spec.coalesce_factor(p.index(), self.geom)
    }
}

/// Plans a design for `dag` on the given geometry and memory spec.
///
/// `style` labels the output (callers: `Ours`, `Ours+LC`, or a baseline
/// style when invoked from `imagen-baselines`).
///
/// # Errors
///
/// See [`PlanError`].
pub fn plan_design(
    dag: &Dag,
    geom: &ImageGeometry,
    spec: &MemorySpec,
    opts: ScheduleOptions,
    style: DesignStyle,
) -> Result<Plan, PlanError> {
    plan_design_with(
        dag,
        &formulate_skeleton(dag, geom.width),
        geom,
        spec,
        opts,
        style,
    )
}

/// [`plan_design`] with a prebuilt [`ConstraintSkeleton`].
///
/// The skeleton must come from [`formulate_skeleton`] on this `dag` (the
/// *base*, un-coalesced DAG) at this geometry's width. Compile sessions
/// and the design-space explorer build the skeleton once per DAG and call
/// this per memory configuration, skipping the spec-independent half of
/// the formulation.
///
/// # Errors
///
/// See [`PlanError`].
pub fn plan_design_with(
    dag: &Dag,
    skeleton: &ConstraintSkeleton,
    geom: &ImageGeometry,
    spec: &MemorySpec,
    opts: ScheduleOptions,
    style: DesignStyle,
) -> Result<Plan, PlanError> {
    let mut working = dag.clone();

    // Multirate planning needs every stage's iteration domain to be
    // integral: the cumulative scale must divide the frame extents.
    let scales = dag.stage_scales();
    for (id, _) in dag.stages() {
        let (fx, fy) = scales[id.index()];
        if geom.width as u64 % fx != 0 || geom.height as u64 % fy != 0 {
            return Err(PlanError::IndivisibleExtent {
                stage: id,
                fx,
                fy,
                width: geom.width,
                height: geom.height,
            });
        }
    }

    // Line coalescing rewrite (Sec. 6) where the spec enables it.
    {
        let _s = imagen_obs::span("plan.coalesce");
        let factors: Vec<u32> = (0..working.num_stages())
            .map(|i| spec.coalesce_factor(i, geom))
            .collect();
        if factors.iter().any(|&g| g > 1) {
            apply_line_coalescing(&mut working, |p| CoalesceFactor::new(factors[p]));
        }
    }

    let params = SpecBufferParams { spec, geom };
    let set = {
        let _s = imagen_obs::span("plan.formulate");
        formulate_with(
            &working,
            geom.width,
            skeleton,
            &params,
            FormulationOptions {
                pruning: opts.pruning,
            },
        )
    };
    let schedule = {
        let _s = imagen_obs::span("ilp.solve");
        solve_schedule(&working, geom.width, &set, opts)?
    };

    let design = {
        let _s = imagen_obs::span("plan.realize");
        realize_design(&working, geom, spec, &schedule, style)?
    };
    Ok(Plan {
        dag: working,
        schedule,
        design,
    })
}

/// Resolves stage `p`'s buffer access streams against a schedule,
/// attaching each stream's multirate cadence (all 1 for rate-1 stages):
/// every accessor maps base rows to producer rows by `pcy` and touches
/// memory at the producer's column cadence `pcx`; the writer is
/// row-active at its own `pcy`, a reader at its consumer's `ccy`.
///
/// Public so out-of-crate checkers (the static analyzer, the cycle
/// simulator) replay exactly the streams the planner certified.
pub fn resolve_entities(
    dag: &Dag,
    p: StageId,
    scales: &[(u64, u64)],
    starts: &[i64],
) -> Vec<ResolvedEntity> {
    let (pcx, pcy) = scales[p.index()];
    buffer_entities(dag, p)
        .iter()
        .map(|e| ResolvedEntity {
            start: starts[e.stage.index()],
            row_offset: e.row_offset,
            height: e.height,
            is_writer: e.is_writer,
            row_div: pcy as u32,
            col_div: pcx as u32,
            row_active: if e.is_writer {
                pcy as u32
            } else {
                scales[e.stage.index()].1 as u32
            },
        })
        .collect()
}

/// Turns a schedule into an allocated, priced design: per-buffer physical
/// planning, aliasing slack, analytic access statistics, PE costs.
pub fn realize_design(
    dag: &Dag,
    geom: &ImageGeometry,
    spec: &MemorySpec,
    schedule: &Schedule,
    style: DesignStyle,
) -> Result<Design, PlanError> {
    let block_bits = spec.backend().block_bits();
    let frame = geom.pixels();
    let scales = dag.stage_scales();

    let mut buffers = Vec::new();
    for p in dag.buffered_stages() {
        let ports = spec.ports_for(p.index());
        let g = spec.coalesce_factor(p.index(), geom).max(1);
        let (pcx, pcy) = scales[p.index()];
        // The buffer stores producer-grid rows: `W/pcx` pixels each, and
        // `H/pcy` of them per frame. Rate-1 buffers keep the full frame
        // geometry.
        let buf_geom = ImageGeometry {
            width: (geom.width as u64 / pcx) as u32,
            height: (geom.height as u64 / pcy) as u32,
            pixel_bits: geom.pixel_bits,
        };
        let row_bits = buf_geom.row_bits();
        let blocks_per_row = if row_bits > block_bits {
            row_bits.div_ceil(block_bits) as u32
        } else {
            1
        };
        let entities: Vec<ResolvedEntity> = resolve_entities(dag, p, &scales, &schedule.starts);

        // Absolute-row discipline: must hold by construction.
        if let Err(violation) = check_accesses(
            geom.width,
            geom.height,
            geom.pixel_bits,
            &entities,
            ports,
            None,
        ) {
            return Err(PlanError::ScheduleViolation {
                buffer: p,
                violation,
            });
        }

        let logical_rows = schedule.buffer_rows[p.index()];
        let phys_rows = required_phys_rows(
            geom.width,
            geom.height,
            geom.pixel_bits,
            &entities,
            ports,
            logical_rows,
            if blocks_per_row > 1 { 1 } else { g },
            blocks_per_row,
            block_bits,
        )
        .map_err(|violation| PlanError::AliasingUnrepairable {
            buffer: p,
            violation,
        })?;

        let mut plan = allocate_buffer(
            p.index(),
            phys_rows,
            logical_rows,
            if blocks_per_row > 1 { 1 } else { g },
            &buf_geom,
            spec.backend(),
            ports,
            0,
            false,
        );

        // Analytic access statistics: per *active* cycle the writer makes
        // 1 access and each reader entity `height` accesses; multirate
        // streams are active only on their cadence sub-grid, so each
        // stream's per-base-cycle rate is scaled by its activity fraction.
        // Spread over the buffer's blocks (uniform across blocks of equal
        // configuration, which keeps the total — what the power model
        // integrates — exact).
        let per_cycle: f64 = entities
            .iter()
            .map(|e| {
                let accesses = if e.is_writer { 1.0 } else { e.height as f64 };
                accesses / (e.row_active as f64 * e.col_div as f64)
            })
            .sum();
        let write_fraction = 1.0 / (pcy as f64 * pcx as f64);
        let nblocks = plan.blocks.len().max(1) as f64;
        for blk in &mut plan.blocks {
            blk.avg_accesses_per_cycle = per_cycle / nblocks;
            // One producer write per active cycle, spread over the rotation.
            blk.avg_writes_per_cycle = write_fraction / nblocks;
            blk.peak_accesses = blk.peak_accesses.max(ports.min(per_cycle.ceil() as u32));
        }
        let _ = frame;
        buffers.push(plan);
    }

    // PE and shift-register-array costs.
    let mut pe_area = 0.0;
    let mut pe_pj = 0.0;
    let mut sra_bits = 0u64;
    for (_, s) in dag.stages() {
        if let StageKind::Compute { kernel } = s.kind() {
            let c = kernel.op_census();
            pe_area += PeModel::area_mm2(c.adds, c.muls, c.divs, c.cmps, c.muxes);
            pe_pj += PeModel::energy_pj(c.adds, c.muls, c.divs, c.cmps, c.muxes);
        }
    }
    for (_, e) in dag.edges() {
        sra_bits += e.window().height as u64 * e.window().width() as u64 * geom.pixel_bits as u64;
    }

    Ok(Design {
        name: dag.name().to_string(),
        geometry: *geom,
        backend: spec.backend(),
        style,
        start_cycles: schedule.starts.iter().map(|&s| s as u64).collect(),
        buffers,
        pe_area_mm2: pe_area,
        pe_power_mw: imagen_mem::tech::pj_per_cycle_to_mw(pe_pj, CLOCK_MHZ),
        sra_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagen_ir::Expr;
    use imagen_mem::MemBackend;

    fn box3(slot: usize) -> Expr {
        Expr::sum((0..9).map(move |i| Expr::tap(slot, i % 3 - 1, i / 3 - 1)))
    }

    fn fig6() -> Dag {
        let mut dag = Dag::new("fig6");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        let k2 = dag
            .add_stage(
                "K2",
                &[k0, k1],
                Expr::bin(
                    imagen_ir::BinOp::Add,
                    Expr::sum((0..4).map(|i| Expr::tap(0, i % 2, i / 2))),
                    box3(1),
                ),
            )
            .unwrap();
        dag.mark_output(k2);
        dag
    }

    fn small_geom() -> ImageGeometry {
        ImageGeometry {
            width: 32,
            height: 24,
            pixel_bits: 16,
        }
    }

    #[test]
    fn ours_dual_port_plans() {
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 2048 }, 2);
        let plan = plan_design(
            &fig6(),
            &small_geom(),
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        assert!(plan.design.ports_respected());
        // Dual-port: single-consumer buffers need no aliasing slack
        // (write+read block sharing is legal); the multi-consumer K0
        // buffer may need at most one slack row (the writer would
        // otherwise alias K2's oldest row while K1 overlaps the writer —
        // the physical refinement documented in DESIGN.md §4).
        for b in &plan.design.buffers {
            assert!(
                b.phys_rows - b.logical_rows <= 1,
                "slack bounded by one row on dual port"
            );
        }
        let k1_buffer = &plan.design.buffers[1];
        assert_eq!(
            k1_buffer.phys_rows, k1_buffer.logical_rows,
            "single-consumer buffer needs no slack"
        );
        assert!(plan.design.sram_kb() > 0.0);
    }

    #[test]
    fn fixynn_single_port_needs_slack() {
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 2048 }, 1);
        let plan = plan_design(
            &fig6(),
            &small_geom(),
            &spec,
            ScheduleOptions::default(),
            DesignStyle::FixyNn,
        )
        .unwrap();
        // Single-port: the writer must never physically alias a reader
        // row, so at least one buffer carries slack.
        assert!(plan
            .design
            .buffers
            .iter()
            .any(|b| b.phys_rows > b.logical_rows));
        // And single-port must use at least as much SRAM as dual-port.
        let dual = plan_design(
            &fig6(),
            &small_geom(),
            &MemorySpec::new(MemBackend::Asic { block_bits: 2048 }, 2),
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        assert!(plan.design.sram_kb() >= dual.design.sram_kb());
    }

    #[test]
    fn coalescing_reduces_block_count() {
        let geom = small_geom();
        // Blocks hold two rows: 2 * 32 * 16 = 1024 bits.
        let backend = MemBackend::Asic { block_bits: 1024 };
        let plain = plan_design(
            &fig6(),
            &geom,
            &MemorySpec::new(backend, 2),
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        let lc = plan_design(
            &fig6(),
            &geom,
            &MemorySpec::new(backend, 2).with_coalescing(),
            ScheduleOptions::default(),
            DesignStyle::OursLc,
        )
        .unwrap();
        assert!(
            lc.design.block_count() < plain.design.block_count(),
            "LC: {} blocks vs plain {} blocks",
            lc.design.block_count(),
            plain.design.block_count()
        );
        assert!(lc.design.sram_kb() < plain.design.sram_kb());
    }

    #[test]
    fn split_rows_plan_when_rows_exceed_blocks() {
        // Tiny blocks force each row across 2 blocks.
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 256 }, 2);
        let plan = plan_design(
            &fig6(),
            &small_geom(),
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        assert!(plan.design.buffers.iter().all(|b| b.blocks_per_row == 2));
    }

    #[test]
    fn access_totals_preserved() {
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 2048 }, 2);
        let plan = plan_design(
            &fig6(),
            &small_geom(),
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        // K0's buffer: writer 1 + K1 reads 3 + K2 reads 2 = 6 accesses per
        // cycle, spread over its blocks.
        let b0 = &plan.design.buffers[0];
        let total: f64 = b0.blocks.iter().map(|b| b.avg_accesses_per_cycle).sum();
        assert!((total - 6.0).abs() < 1e-9, "got {total}");
    }

    #[test]
    fn pe_and_sra_costs_present() {
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 2048 }, 2);
        let plan = plan_design(
            &fig6(),
            &small_geom(),
            &spec,
            ScheduleOptions::default(),
            DesignStyle::Ours,
        )
        .unwrap();
        assert!(plan.design.pe_area_mm2 > 0.0);
        assert!(plan.design.pe_power_mw > 0.0);
        assert!(plan.design.sra_bits > 0);
        assert!(plan.design.memory_area_fraction() > 0.5);
    }
}
