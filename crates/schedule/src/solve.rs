//! ILP assembly and sub-problem search: turns a [`ConstraintSet`] into an
//! optimal pipeline schedule (paper Sec. 5.2, 5.5).
//!
//! The optimization variables are the stage start cycles `S_i` plus one
//! auxiliary "retire" variable `T_p` per buffered producer with
//! `T_p ≥ S_c − lag_e·W` for each consumer edge; the objective
//! `Σ (T_p − S_p)` is the paper's Equ. 1a with the ceiling dropped
//! (footnote 7). Every constraint is a difference constraint, so the ILP's
//! LP relaxation is integral and branch-and-bound terminates at the root.
//! The optional exact-rows objective ([`SizeObjective::TotalRows`])
//! re-introduces the ceiling through integer row-count variables — a
//! genuinely integer program — and is used as an ablation.
//!
//! OR-groups that survive pruning are resolved by depth-first search over
//! alternative choices with incumbent-based pruning (the paper's
//! "sub-optimization problems", Sec. 5.4).

use crate::constraints::{row_periods, to_diff_system, ConstraintSet, DiffGe, FormulationStats};
use imagen_ilp::{LinExpr, Model, Sense, SolveError};
use imagen_ir::{Dag, StageId};
use std::fmt;

/// Which buffer-size objective to minimize.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SizeObjective {
    /// The paper's linear objective: total delay `Σ (T_p - S_p)`
    /// (ceilings dropped per footnote 7).
    #[default]
    TotalDelay,
    /// Exact total rows `Σ ⌈(T_p - S_p) / W⌉` via integer row variables.
    TotalRows,
}

/// Scheduling options.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ScheduleOptions {
    /// Apply Sec. 5.4 constraint pruning.
    pub pruning: bool,
    /// Buffer-size objective.
    pub objective: SizeObjective,
    /// Maximum OR-group sub-problems to explore.
    pub max_subproblems: usize,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            pruning: true,
            objective: SizeObjective::TotalDelay,
            max_subproblems: 4096,
        }
    }
}

/// Scheduling failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ScheduleError {
    /// No schedule satisfies the constraint system.
    Infeasible,
    /// The sub-problem budget was exhausted before proving optimality.
    TooManySubproblems(usize),
    /// Internal solver failure.
    Solver(SolveError),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Infeasible => write!(f, "no feasible pipeline schedule exists"),
            ScheduleError::TooManySubproblems(n) => {
                write!(f, "OR-group search exceeded {n} sub-problems")
            }
            ScheduleError::Solver(e) => write!(f, "ILP solver failed: {e}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl From<SolveError> for ScheduleError {
    fn from(e: SolveError) -> Self {
        match e {
            SolveError::Infeasible => ScheduleError::Infeasible,
            other => ScheduleError::Solver(other),
        }
    }
}

/// Search and solver statistics for the Sec. 8.2 experiments.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SolveReport {
    /// Formulation statistics (combination/pruning counts).
    pub formulation: FormulationStats,
    /// ILP sub-problems actually solved.
    pub subproblems: usize,
    /// Variables in each ILP.
    pub ilp_vars: usize,
    /// Constraints in each ILP.
    pub ilp_constraints: usize,
}

/// An optimal pipeline schedule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schedule {
    /// Start cycle per stage (normalized: earliest stage starts at 0).
    pub starts: Vec<i64>,
    /// Line-buffer rows per stage (Equ. 2; 0 for stages with no buffer).
    pub buffer_rows: Vec<u32>,
    /// Total buffered rows (the minimized objective, in row units).
    pub total_rows: u64,
    /// Search statistics.
    pub report: SolveReport,
}

impl Schedule {
    /// Start cycle of a stage.
    pub fn start(&self, s: StageId) -> i64 {
        self.starts[s.index()]
    }

    /// End-to-end latency in cycles for a `width × height` frame: the
    /// cycle after the last output pixel is produced, for the latest
    /// output stage.
    pub fn latency(&self, dag: &Dag, width: u32, height: u32) -> i64 {
        let frame = width as i64 * height as i64;
        dag.stages()
            .filter(|(_, s)| s.is_output())
            .map(|(id, _)| self.starts[id.index()] + frame)
            .max()
            .unwrap_or(frame)
    }
}

/// Solves the scheduling problem for `dag` given its formulated
/// constraints.
///
/// # Errors
///
/// [`ScheduleError::Infeasible`] when the constraint system (or every
/// OR-group resolution) is unsatisfiable; [`ScheduleError::TooManySubproblems`]
/// when the group search exceeds its budget.
pub fn solve_schedule(
    dag: &Dag,
    width: u32,
    set: &ConstraintSet,
    opts: ScheduleOptions,
) -> Result<Schedule, ScheduleError> {
    let n = dag.num_stages();
    let periods = row_periods(dag, width);

    if set.groups.iter().any(|g| g.alternatives.is_empty()) {
        return Err(ScheduleError::Infeasible);
    }

    // Order groups smallest-first so the DFS branches late.
    let mut groups: Vec<&crate::constraints::OrGroup> = set.groups.iter().collect();
    groups.sort_by_key(|g| g.alternatives.len());

    let mut best: Option<(i64, Vec<i64>)> = None;
    let mut subproblems = 0usize;
    let mut report = SolveReport {
        formulation: set.stats,
        ..SolveReport::default()
    };

    let mut chosen: Vec<DiffGe> = Vec::new();
    let mut stack: Vec<usize> = Vec::new(); // alternative index per depth

    // Iterative DFS over group alternatives.
    loop {
        if stack.len() == groups.len() {
            // Leaf: solve the ILP for this resolution.
            subproblems += 1;
            if subproblems > opts.max_subproblems {
                return Err(ScheduleError::TooManySubproblems(opts.max_subproblems));
            }
            match solve_leaf(dag, &periods, &set.hard, &chosen, opts.objective, &mut report) {
                Ok((obj, starts)) => {
                    if best.as_ref().is_none_or(|(b, _)| obj < *b) {
                        best = Some((obj, starts));
                    }
                }
                Err(ScheduleError::Infeasible) => {}
                Err(e) => return Err(e),
            }
            // Backtrack.
            if !advance(&mut stack, &mut chosen, &groups) {
                break;
            }
            continue;
        }
        // Descend into the next group, first alternative.
        let alt = groups[stack.len()].alternatives[0];
        stack.push(0);
        chosen.push(alt);
        // Quick feasibility cut on the partial choice.
        if to_diff_system(n, &set.hard, &chosen)
            .minimal_solution()
            .is_err()
            && !advance(&mut stack, &mut chosen, &groups)
        {
            break;
        }
    }

    report.subproblems = subproblems;
    let (_, mut starts) = best.ok_or(ScheduleError::Infeasible)?;

    // Normalize so the earliest stage starts at cycle 0.
    let min = starts.iter().copied().min().unwrap_or(0);
    for s in &mut starts {
        *s -= min;
    }

    let (buffer_rows, total_rows) = size_buffers(dag, width, &starts);
    Ok(Schedule {
        starts,
        buffer_rows,
        total_rows,
        report,
    })
}

/// Advances the DFS cursor to the next unexplored alternative; returns
/// `false` when the search space is exhausted.
fn advance(
    stack: &mut Vec<usize>,
    chosen: &mut Vec<DiffGe>,
    groups: &[&crate::constraints::OrGroup],
) -> bool {
    while let Some(mut idx) = stack.pop() {
        chosen.pop();
        idx += 1;
        let depth = stack.len();
        if idx < groups[depth].alternatives.len() {
            stack.push(idx);
            chosen.push(groups[depth].alternatives[idx]);
            return true;
        }
    }
    false
}

/// Builds and solves one ILP leaf; returns (objective, starts).
///
/// `periods` are the per-stage buffer row periods (`pcy·W`). The
/// `TotalDelay` objective weights each buffer's delay by `L / P_p`
/// (`L` = lcm of the periods), so that the weighted delay counts *rows*
/// in a common unit — for rate-1 pipelines every weight is 1 and the
/// model is identical to the seed's.
fn solve_leaf(
    dag: &Dag,
    periods: &[i64],
    hard: &[DiffGe],
    chosen: &[DiffGe],
    objective: SizeObjective,
    report: &mut SolveReport,
) -> Result<(i64, Vec<i64>), ScheduleError> {
    let mut m = Model::new(format!("{}-schedule", dag.name()));
    let svars: Vec<_> = dag
        .stages()
        .map(|(id, s)| m.add_int_var(format!("S_{}_{}", id.index(), s.name())))
        .collect();

    for c in hard.iter().chain(chosen) {
        if c.a == c.b {
            continue; // trivially-true marker constraints
        }
        m.add_diff_ge(svars[c.a.index()], svars[c.b.index()], c.k, "c");
    }

    // Retire variables and the objective.
    let mut obj = LinExpr::zero();
    let buffered = dag.buffered_stages();
    // Common delay unit for mixed-period buffers (lcm of the buffered
    // periods; 1-buffer lcm = that period). Rate-1: L = W, weights = 1.
    let lcm_period = buffered
        .iter()
        .map(|p| periods[p.index()])
        .fold(1i64, |acc, p| {
            let g = gcd(acc, p);
            (acc / g).saturating_mul(p)
        });
    let mut rvars = Vec::new();
    for &p in &buffered {
        let pw = periods[p.index()];
        let t = m.add_int_var(format!("T_{}", p.index()));
        for (_, e) in dag.consumer_edges(p) {
            let lag = e.window().lag as i64;
            // T_p >= S_c - lag * P_p + max(0, P_p - P_c). The extra term
            // covers upsample readers (P_c < P_p): they re-read a producer
            // row for P_p - P_c base cycles past the rate-1 model's last
            // access, so the row retires that much later.
            let extra = (pw - periods[e.consumer().index()]).max(0);
            m.add_diff_ge(t, svars[e.consumer().index()], -lag * pw + extra, "retire");
        }
        // Buffers hold at least one row.
        m.add_diff_ge(t, svars[p.index()], pw, "minrow");
        match objective {
            SizeObjective::TotalDelay => {
                let weight = lcm_period / pw;
                obj = obj + (LinExpr::from(t) - LinExpr::from(svars[p.index()])) * weight;
            }
            SizeObjective::TotalRows => {
                let r = m.add_int_var(format!("R_{}", p.index()));
                // P_p * R_p + S_p - T_p >= 0.
                let expr =
                    LinExpr::from(r) * pw + LinExpr::from(svars[p.index()]) - LinExpr::from(t);
                m.add_constraint(expr, imagen_ilp::Cmp::Ge, 0, "rows");
                obj = obj + LinExpr::from(r);
                rvars.push(r);
            }
        }
    }
    m.set_objective(Sense::Minimize, obj);
    report.ilp_vars = m.num_vars();
    report.ilp_constraints = m.num_constraints();

    let sol = m.solve()?;
    let starts: Vec<i64> = svars.iter().map(|&v| sol.int_value(v)).collect();
    let obj = sol
        .objective_value()
        .to_integer()
        .expect("integral objective") as i64;
    Ok((obj, starts))
}

/// Sizes every line buffer from a concrete schedule (Equ. 2, per-edge lag
/// aware, in the producer's row period): `rows_p = max_e ⌈(S_c - S_p -
/// lag_e·P_p + max(0, P_p - P_c)) / P_p⌉` with `P_p = pcy·W` (just `W`
/// for rate-1 stages). The `max(0, P_p - P_c)` term is the upsample-reader
/// correction: a consumer with a shorter row period re-reads each producer
/// row until `P_p - P_c` base cycles after the rate-1 model's last access,
/// so the row must survive that much longer before the writer recycles it.
pub fn size_buffers(dag: &Dag, width: u32, starts: &[i64]) -> (Vec<u32>, u64) {
    let periods = row_periods(dag, width);
    let mut rows = vec![0u32; dag.num_stages()];
    for p in dag.buffered_stages() {
        let w = periods[p.index()];
        let mut q = 1i64;
        for (_, e) in dag.consumer_edges(p) {
            let extra = (w - periods[e.consumer().index()]).max(0);
            let d = starts[e.consumer().index()] - starts[p.index()]
                - e.window().lag as i64 * w
                + extra;
            debug_assert!(d >= 1, "dependency constraints guarantee d >= 1");
            q = q.max((d + w - 1).div_euclid(w));
        }
        rows[p.index()] = q as u32;
    }
    let total = rows.iter().map(|&r| r as u64).sum();
    (rows, total)
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

/// ASAP (as-soon-as-possible) schedule from the hard constraints plus a
/// fixed alternative choice — the minimum-latency schedule, used for
/// latency reporting and as an independent check (it is feasible but not
/// buffer-minimal in general).
pub fn asap_schedule(
    n: usize,
    hard: &[DiffGe],
    chosen: &[DiffGe],
) -> Result<Vec<i64>, ScheduleError> {
    to_diff_system(n, hard, chosen)
        .minimal_solution()
        .map_err(|_| ScheduleError::Infeasible)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{formulate, schedule_satisfies, FormulationOptions};
    use crate::entity::buffer_entities;
    use imagen_ir::Expr;

    struct Uniform {
        ports: u32,
        g: u32,
    }
    impl crate::constraints::BufferParams for Uniform {
        fn ports(&self, _: StageId) -> u32 {
            self.ports
        }
        fn coalesce(&self, _: StageId) -> u32 {
            self.g
        }
    }

    fn box3(slot: usize) -> Expr {
        Expr::sum((0..9).map(move |i| Expr::tap(slot, i % 3 - 1, i / 3 - 1)))
    }

    fn fig6() -> Dag {
        let mut dag = Dag::new("fig6");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        let k2 = dag
            .add_stage(
                "K2",
                &[k0, k1],
                Expr::bin(
                    imagen_ir::BinOp::Add,
                    Expr::sum((0..4).map(|i| Expr::tap(0, i % 2, i / 2))),
                    box3(1),
                ),
            )
            .unwrap();
        dag.mark_output(k2);
        dag
    }

    fn solve(dag: &Dag, ports: u32, g: u32, opts: ScheduleOptions) -> Schedule {
        let set = formulate(
            dag,
            480,
            &Uniform { ports, g },
            FormulationOptions {
                pruning: opts.pruning,
            },
        );
        let sched = solve_schedule(dag, 480, &set, opts).unwrap();
        assert!(schedule_satisfies(&set, &sched.starts));
        sched
    }

    #[test]
    fn chain_schedules_at_dependency_bound() {
        let mut dag = Dag::new("chain");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        let k2 = dag.add_stage("K2", &[k1], box3(0)).unwrap();
        dag.mark_output(k2);
        let s = solve(&dag, 2, 1, ScheduleOptions::default());
        assert_eq!(s.starts, vec![0, 961, 1922]);
        // Each producer buffers ceil((2W+1)/W) = 3 rows.
        assert_eq!(s.buffer_rows, vec![3, 3, 0]);
        assert_eq!(s.total_rows, 6);
    }

    #[test]
    fn fig6_dual_port_optimum() {
        let dag = fig6();
        let s = solve(&dag, 2, 1, ScheduleOptions::default());
        // K1 at the dependency bound; K2 pushed to 3W past K0 by the
        // surviving contention constraint, and 2W+1 past K1.
        assert_eq!(s.starts[0], 0);
        assert_eq!(s.starts[1], 961);
        assert_eq!(s.starts[2], 1922);
        // K0's buffer: K1 delay 961 -> 3 rows; K2 delay 1922 at lag 1 ->
        // ceil((1922-480)/480) = 4 rows... max = 4. K1's buffer: 3 rows.
        assert_eq!(s.buffer_rows[0], 4);
        assert_eq!(s.buffer_rows[1], 3);
    }

    #[test]
    fn single_port_costs_more_rows() {
        let dag = fig6();
        let dual = solve(&dag, 2, 1, ScheduleOptions::default());
        let single = solve(&dag, 1, 1, ScheduleOptions::default());
        assert!(
            single.total_rows > dual.total_rows,
            "single-port must buffer more: {} vs {}",
            single.total_rows,
            dual.total_rows
        );
    }

    #[test]
    fn pruning_does_not_change_optimum() {
        let dag = fig6();
        let with = solve(&dag, 2, 1, ScheduleOptions::default());
        let without = solve(
            &dag,
            2,
            1,
            ScheduleOptions {
                pruning: false,
                ..Default::default()
            },
        );
        assert_eq!(with.total_rows, without.total_rows);
        assert!(
            without.report.subproblems >= with.report.subproblems,
            "pruning explores fewer sub-problems"
        );
    }

    #[test]
    fn exact_rows_objective_never_worse() {
        let dag = fig6();
        let linear = solve(&dag, 2, 1, ScheduleOptions::default());
        let exact = solve(
            &dag,
            2,
            1,
            ScheduleOptions {
                objective: SizeObjective::TotalRows,
                ..Default::default()
            },
        );
        assert!(exact.total_rows <= linear.total_rows);
    }

    #[test]
    fn asap_vs_optimal() {
        let dag = fig6();
        let set = formulate(
            &dag,
            480,
            &Uniform { ports: 2, g: 1 },
            FormulationOptions::default(),
        );
        let asap = asap_schedule(dag.num_stages(), &set.hard, &[]).unwrap();
        let opt = solve(&dag, 2, 1, ScheduleOptions::default());
        // ASAP is feasible and no later than the optimum stage-wise.
        for (a, s) in asap.iter().zip(&opt.starts) {
            assert!(a <= s);
        }
    }

    #[test]
    fn latency_accounts_frame() {
        let mut dag = Dag::new("chain");
        let k0 = dag.add_input("K0");
        let k1 = dag.add_stage("K1", &[k0], box3(0)).unwrap();
        dag.mark_output(k1);
        let s = solve(&dag, 2, 1, ScheduleOptions::default());
        assert_eq!(s.latency(&dag, 480, 320), 961 + 480 * 320);
    }

    #[test]
    fn entities_sanity() {
        let dag = fig6();
        let ents = buffer_entities(&dag, StageId::from_index(0));
        assert_eq!(ents.len(), 3);
    }

    #[test]
    fn infeasible_empty_group_reported() {
        use crate::constraints::{ConstraintSet, OrGroup};
        let dag = fig6();
        let set = ConstraintSet {
            hard: vec![],
            groups: vec![OrGroup {
                alternatives: vec![],
                buffer: StageId::from_index(0),
            }],
            stats: Default::default(),
        };
        assert!(matches!(
            solve_schedule(&dag, 480, &set, ScheduleOptions::default()),
            Err(ScheduleError::Infeasible)
        ));
    }
}
