//! The cycle-level accelerator simulator.
//!
//! This is the reproduction of the paper's ASIC-backend simulator
//! (Sec. 7): it replays a planned [`Design`] cycle by cycle with *real*
//! storage — every line buffer is a rotating `phys_rows × W` pixel array,
//! every stencil window a shift-register array — and verifies the three
//! no-stall requirements of Sec. 5.1:
//!
//! * **R1 (causality)** — every buffer read happens strictly after the
//!   producing write (residency check, "not yet produced");
//! * **R2 (no off-chip traffic)** — no pixel is overwritten before its
//!   last reader consumed it ("already evicted");
//! * **R3 (port discipline)** — per physical block, accesses per cycle
//!   never exceed the port count (with same-address read fan-out merged).
//!
//! Because stages really read from the modeled buffers, a scheduling bug
//! corrupts the output image and the final bit-exact comparison against
//! the golden executor fails — the functional check is load-bearing, not
//! decorative. The simulator also produces the per-block access counts
//! that drive the power model.

//!
//! Multirate stages run on the common base clock: every stage is active
//! for one `W x H` base-cycle frame, but a stage at cumulative scale
//! `(cx, cy)` computes only on cycles where `y % cy == 0 && x % cx == 0`,
//! producing pixel `(x/cx, y/cy)` of its own `W/cx x H/cy` grid. Line
//! buffers hold *producer-grid* rows (width `W/pcx`), and each reader's
//! shift-register array loads on its edge-active cadence
//! (`y % ccy == 0 && x % pcx == 0`) so that by construction the newest
//! SRA column at a compute cycle is producer column `x/pcx`.

use crate::golden::{execute, GoldenError, GoldenRun};
use crate::image::Image;
use imagen_ir::{Dag, StageId, StageKind};
use imagen_mem::{BlockRole, Design};
use std::fmt;

/// Maximum violations recorded per category (the simulation continues to
/// let the functional comparison demonstrate the corruption).
const MAX_RECORDED: usize = 16;

/// A port-discipline violation observed by the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimPortViolation {
    /// Producer stage owning the buffer.
    pub buffer_stage: usize,
    /// Cycle of the violation.
    pub cycle: i64,
    /// Block index within the buffer.
    pub block: usize,
    /// Accesses observed.
    pub count: u32,
    /// Ports available.
    pub ports: u32,
}

/// A residency violation (R1/R2) observed by the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ResidencyViolation {
    /// Producer stage owning the buffer.
    pub buffer_stage: usize,
    /// Reading stage.
    pub reader: usize,
    /// Cycle of the offending read.
    pub cycle: i64,
    /// Absolute row read.
    pub row: i64,
    /// `true` = not yet produced (R1); `false` = already evicted (R2).
    pub not_yet_produced: bool,
}

/// Simulation outcome.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Total cycles simulated.
    pub cycles: i64,
    /// Cycle after the last output pixel (end-to-end frame latency).
    pub latency: i64,
    /// Port violations (empty for a correct design).
    pub port_violations: Vec<SimPortViolation>,
    /// Residency violations (empty for a correct design).
    pub residency_violations: Vec<ResidencyViolation>,
    /// Whether every output stream matched the golden executor bit-exactly.
    pub outputs_match_golden: bool,
    /// Pixels emitted per cycle per output stage in steady state (1.0 for
    /// a stall-free design).
    pub throughput_px_per_cycle: f64,
    /// Total SRAM/BRAM accesses across all buffers.
    pub total_accesses: u64,
    /// Exact per-block access totals, write totals and peaks, one entry
    /// per design buffer: `(stage, totals, write totals, peaks)`.
    pub buffer_access_stats: Vec<BufferAccessStats>,
    /// The streams produced by every output stage, as images.
    pub output_images: Vec<(usize, Image)>,
}

/// Per-buffer access accounting: `(stage, per-block access totals,
/// per-block write totals, per-block peaks)`.
pub type BufferAccessStats = (usize, Vec<u64>, Vec<u64>, Vec<u32>);

impl SimReport {
    /// `true` when the design met all three no-stall requirements and
    /// produced bit-exact output.
    pub fn is_clean(&self) -> bool {
        self.port_violations.is_empty()
            && self.residency_violations.is_empty()
            && self.outputs_match_golden
    }
}

/// Simulator failure (structural, before any cycles run).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SimError {
    /// Golden execution failed (bad inputs).
    Golden(GoldenError),
    /// The design's geometry does not match the input images.
    GeometryMismatch,
    /// The design is missing the schedule entry or buffer for a stage.
    IncompleteDesign {
        /// The stage lacking planning data.
        stage: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Golden(e) => write!(f, "{e}"),
            SimError::GeometryMismatch => {
                write!(f, "input image dimensions do not match the design geometry")
            }
            SimError::IncompleteDesign { stage } => {
                write!(f, "design has no plan for stage {stage}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<GoldenError> for SimError {
    fn from(e: GoldenError) -> Self {
        SimError::Golden(e)
    }
}

/// Rotating line-buffer storage for one producer stage.
struct BufferState {
    /// Index into `design.buffers`, if this stage owns a planned buffer.
    plan: Option<usize>,
    phys_rows: u32,
    data: Vec<i64>,
    /// Per-block access counters for the current cycle: (block, count).
    cycle_counts: Vec<(usize, u32)>,
    /// Same-address read dedup for the current cycle: (block, row, x).
    cycle_reads: Vec<(usize, i64, i64)>,
    /// Accumulated per-block totals (reads + writes).
    totals: Vec<u64>,
    /// Accumulated per-block write totals.
    totals_w: Vec<u64>,
    /// Per-block peak accesses in any cycle.
    peaks: Vec<u32>,
    fifo: bool,
}

/// Simulates `design` for `dag` on `inputs`, verifying timing and
/// functional correctness against the golden executor.
///
/// # Errors
///
/// [`SimError`] for structural problems; timing/functional problems are
/// reported in the returned [`SimReport`], not as errors.
pub fn simulate(dag: &Dag, design: &Design, inputs: &[Image]) -> Result<SimReport, SimError> {
    let geom = design.geometry;
    let (w, h) = (geom.width as i64, geom.height as i64);
    if inputs
        .iter()
        .any(|i| i.width() != geom.width || i.height() != geom.height)
    {
        return Err(SimError::GeometryMismatch);
    }
    let golden: GoldenRun = execute(dag, inputs)?;
    if design.start_cycles.len() < dag.num_stages() {
        return Err(SimError::IncompleteDesign {
            stage: design.start_cycles.len(),
        });
    }

    let frame = w * h;
    let starts: Vec<i64> = design.start_cycles.iter().map(|&s| s as i64).collect();

    // Cumulative per-stage scales; a stage's own grid is `w/cx x h/cy`
    // and its line buffer stores producer-grid rows of width `w/cx`.
    let scales: Vec<(i64, i64)> = dag
        .stage_scales()
        .iter()
        .map(|&(cx, cy)| (cx as i64, cy as i64))
        .collect();

    // Per-stage buffer state.
    let mut buffers: Vec<BufferState> = Vec::with_capacity(dag.num_stages());
    for (id, _) in dag.stages() {
        let (cx, _) = scales[id.index()];
        let plan_idx = design.buffers.iter().position(|b| b.stage == id.index());
        let (phys_rows, nblocks, fifo) = match plan_idx {
            Some(i) => {
                let p = &design.buffers[i];
                (
                    p.phys_rows.max(p.logical_rows).max(1),
                    p.blocks.len(),
                    p.blocks.iter().any(|b| b.role == BlockRole::FifoSegment),
                )
            }
            None => (0, 0, false),
        };
        buffers.push(BufferState {
            plan: plan_idx,
            phys_rows,
            data: vec![0; (phys_rows as i64 * (w / cx)) as usize],
            cycle_counts: Vec::new(),
            cycle_reads: Vec::new(),
            totals: vec![0; nblocks],
            totals_w: vec![0; nblocks],
            peaks: vec![0; nblocks],
            fifo,
        });
    }

    // Shift-register arrays, one per edge: h rows x sra_width columns.
    struct Sra {
        height: u32,
        width: u32,
        lag: u32,
        data: Vec<i64>,
    }
    let mut sras: Vec<Sra> = dag
        .edges()
        .map(|(_, e)| {
            let width = (-e.window().dx_min + 1).max(1) as u32;
            Sra {
                height: e.window().height,
                width,
                lag: e.window().lag,
                data: vec![0; (e.window().height * width) as usize],
            }
        })
        .collect();

    let end = starts.iter().map(|s| s + frame).max().unwrap_or(frame);

    let mut port_violations = Vec::new();
    let mut residency_violations = Vec::new();
    let mut outputs: Vec<(StageId, Image)> = dag
        .stages()
        .filter(|(_, s)| s.is_output())
        .map(|(id, _)| {
            let (cx, cy) = scales[id.index()];
            (id, Image::new((w / cx) as u32, (h / cy) as u32))
        })
        .collect();
    let mut next_input = vec![0usize; dag.num_stages()];
    {
        let mut idx = 0;
        for (i, s) in dag.stages() {
            if s.is_input() {
                next_input[i.index()] = idx;
                idx += 1;
            }
        }
    }

    let edge_list: Vec<(usize, imagen_ir::Edge)> =
        dag.edges().map(|(id, e)| (id.index(), e.clone())).collect();
    // Per-stage slot -> edge index lookup for kernel taps.
    let slot_edge: Vec<Vec<usize>> = dag
        .stages()
        .map(|(sid, s)| {
            let mut v = vec![usize::MAX; s.producers().len()];
            for (i, e) in &edge_list {
                if e.consumer() == sid {
                    v[e.slot()] = *i;
                }
            }
            v
        })
        .collect();

    // Per-cycle scratch: values computed in the read phase, written in
    // the write phase (SRAMs are read-first: a read and a write to the
    // same address in one cycle returns the old data).
    let mut computed: Vec<i64> = vec![0; dag.num_stages()];
    for t in 0..end {
        // Begin-of-cycle: clear per-cycle counters.
        for b in &mut buffers {
            b.cycle_counts.clear();
            b.cycle_reads.clear();
        }

        // ---- Read phase: load SRAs and evaluate kernels. -----------
        for (sid, stage) in dag.stages() {
            let s = starts[sid.index()];
            if t < s || t >= s + frame {
                continue;
            }
            let k = t - s;
            let y = k.div_euclid(w);
            let x = k.rem_euclid(w);
            let (ccx, ccy) = scales[sid.index()];

            // 1. Load one column into each incoming SRA (reads the
            //    producer's rotating buffer) and account the accesses.
            //    Edge-active cadence: once per consumer-active row
            //    (`y % ccy == 0`), at every producer-grid column
            //    (`x % pcx == 0`).
            for (eidx, e) in &edge_list {
                if e.consumer() != sid {
                    continue;
                }
                let p = e.producer().index();
                let (pcx, pcy) = scales[p];
                if y % ccy != 0 || x % pcx != 0 {
                    continue;
                }
                let pw = w / pcx;
                let ph = h / pcy;
                let xp = x / pcx;
                // Producer row the newest taps anchor to: floor(y/pcy)
                // (= fy*yc for downsample, floor(yc/fy) for upsample).
                let r0 = y / pcy;
                let pper = pcy * w; // producer row period in base cycles
                let sra = &mut sras[*eidx];
                // Shift left one column.
                for r in 0..sra.height as usize {
                    let base = r * sra.width as usize;
                    for c in 0..sra.width as usize - 1 {
                        sra.data[base + c] = sra.data[base + c + 1];
                    }
                }
                let pb = &mut buffers[p];
                for j in 0..sra.height {
                    let row = (r0 + sra.lag as i64 + j as i64).min(ph - 1);
                    // Residency (R1/R2). FIFO designs are dataflow-correct
                    // by construction; the rotating model still holds the
                    // right values because fifo rows >= reuse distance.
                    let produced = starts[p] + row * pper + xp * pcx;
                    // A slot is recycled only when the producer writes row
                    // `row + phys_rows`; rows near the bottom of the frame
                    // are never overwritten (the producer stops), so
                    // clamped tail reads stay valid indefinitely.
                    let overwritten = if row + (pb.phys_rows as i64) < ph {
                        produced + pb.phys_rows as i64 * pper
                    } else {
                        i64::MAX
                    };
                    if (produced >= t || overwritten < t)
                        && residency_violations.len() < MAX_RECORDED
                    {
                        residency_violations.push(ResidencyViolation {
                            buffer_stage: p,
                            reader: sid.index(),
                            cycle: t,
                            row,
                            not_yet_produced: produced >= t,
                        });
                    }
                    let slot = (row.rem_euclid(pb.phys_rows as i64) * pw + xp) as usize;
                    let v = pb.data[slot];
                    sra.data[(j * sra.width + sra.width - 1) as usize] = v;
                    // Access accounting (reads merge on identical address).
                    if !pb.fifo {
                        if let Some(pi) = pb.plan {
                            if let Some(block) =
                                design.buffers[pi].block_of(row as u64, xp as u32, &geom)
                            {
                                let dup = pb
                                    .cycle_reads
                                    .iter()
                                    .any(|&(bk, r2, x2)| bk == block && r2 == row && x2 == xp);
                                if !dup {
                                    pb.cycle_reads.push((block, row, xp));
                                    bump(&mut pb.cycle_counts, block);
                                }
                            }
                        }
                    }
                }
            }

            // 2. Compute the stage's output pixel from its SRAs, on the
            //    stage's own cadence.
            if y % ccy != 0 || x % ccx != 0 {
                continue;
            }
            computed[sid.index()] = match stage.kind() {
                StageKind::Input => inputs[next_input[sid.index()]].get(x as u32, y as u32),
                StageKind::Compute { kernel } => {
                    let slots = &slot_edge[sid.index()];
                    let producers = stage.producers();
                    kernel.eval(&mut |slot, dx, dy| {
                        let sra = &sras[slots[slot]];
                        let (pcx, _) = scales[producers[slot].index()];
                        // Newest SRA column holds producer column x/pcx.
                        let newest = x / pcx;
                        let j = (dy as u32).saturating_sub(sra.lag);
                        let col = (newest + dx as i64).max(0);
                        let c = (sra.width as i64 - 1 - (newest - col)).max(0) as u32;
                        sra.data[(j * sra.width + c) as usize]
                    })
                    // Kernel taps index the SRA: row j = dy - lag, column
                    // from the clamped offset; both clamps mirror the
                    // golden executor's clamp-to-edge semantics.
                }
            };
        }

        // ---- Write phase: commit values to buffers and outputs. ----
        for (sid, stage) in dag.stages() {
            let s = starts[sid.index()];
            if t < s || t >= s + frame {
                continue;
            }
            let k = t - s;
            let y = k.div_euclid(w);
            let x = k.rem_euclid(w);
            let (cx, cy) = scales[sid.index()];
            // A stage only produces on its own cadence.
            if y % cy != 0 || x % cx != 0 {
                continue;
            }
            let (yc, xc) = (y / cy, x / cx);
            let value = computed[sid.index()];

            // 3. Write to the stage's rotating buffer (if it has one).
            let sb = &mut buffers[sid.index()];
            if sb.phys_rows > 0 {
                let slot = (yc.rem_euclid(sb.phys_rows as i64) * (w / cx) + xc) as usize;
                sb.data[slot] = value;
                if !sb.fifo {
                    if let Some(pi) = sb.plan {
                        if let Some(block) =
                            design.buffers[pi].block_of(yc as u64, xc as u32, &geom)
                        {
                            bump(&mut sb.cycle_counts, block);
                            sb.totals_w[block] += 1;
                        }
                    }
                }
            }

            // 4. Output stages stream to the output image.
            if stage.is_output() {
                if let Some((_, img)) = outputs.iter_mut().find(|(id, _)| *id == sid) {
                    img.set(xc as u32, yc as u32, value);
                }
            }
        }

        // End-of-cycle: check port discipline, accumulate totals.
        for (si, b) in buffers.iter_mut().enumerate() {
            if b.fifo {
                continue; // FIFO accounting is per-active-cycle, below.
            }
            let Some(pi) = b.plan else { continue };
            let ports = design.buffers[pi]
                .blocks
                .first()
                .map(|blk| blk.ports)
                .unwrap_or(1);
            for &(block, count) in &b.cycle_counts {
                b.totals[block] += count as u64;
                if count > b.peaks[block] {
                    b.peaks[block] = count;
                }
                if count > ports && port_violations.len() < MAX_RECORDED {
                    port_violations.push(SimPortViolation {
                        buffer_stage: si,
                        cycle: t,
                        block,
                        count,
                        ports,
                    });
                }
            }
        }
    }

    // FIFO buffers: every segment does one push and one pop per cycle
    // while the stream is live (the SODA property that costs power).
    for (sid, _) in dag.stages() {
        let b = &mut buffers[sid.index()];
        if !b.fifo {
            continue;
        }
        let (cx, cy) = scales[sid.index()];
        // Each segment is busy for one stage-grid frame's worth of pushes.
        let live = frame / (cx * cy);
        for tot in b.totals.iter_mut() {
            *tot = 2 * live as u64;
        }
        for tot in b.totals_w.iter_mut() {
            *tot = live as u64;
        }
        for pk in b.peaks.iter_mut() {
            *pk = 2;
        }
    }

    // Compare outputs against golden.
    let mut outputs_match = true;
    for (id, img) in &outputs {
        if golden.stage(*id).diff_count(img) != 0 {
            outputs_match = false;
        }
    }

    let latency = dag
        .stages()
        .filter(|(_, s)| s.is_output())
        .map(|(id, _)| starts[id.index()] + frame)
        .max()
        .unwrap_or(frame);

    let total_accesses: u64 = buffers.iter().map(|b| b.totals.iter().sum::<u64>()).sum();

    let buffer_access_stats: Vec<BufferAccessStats> = design
        .buffers
        .iter()
        .map(|bp| {
            let state = &buffers[bp.stage];
            (
                bp.stage,
                state.totals.clone(),
                state.totals_w.clone(),
                state.peaks.clone(),
            )
        })
        .collect();

    Ok(SimReport {
        cycles: end,
        latency,
        port_violations,
        residency_violations,
        outputs_match_golden: outputs_match,
        throughput_px_per_cycle: 1.0,
        total_accesses,
        buffer_access_stats,
        output_images: outputs
            .into_iter()
            .map(|(id, img)| (id.index(), img))
            .collect(),
    })
}

fn bump(counts: &mut Vec<(usize, u32)>, block: usize) {
    match counts.iter_mut().find(|(b, _)| *b == block) {
        Some((_, c)) => *c += 1,
        None => counts.push((block, 1)),
    }
}

/// Simulates and writes the measured per-block access statistics back
/// into the design (average accesses per streaming cycle and peaks),
/// replacing the planner's analytic estimates with exact counts.
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_and_annotate(
    dag: &Dag,
    design: &mut Design,
    inputs: &[Image],
) -> Result<SimReport, SimError> {
    let report = simulate(dag, design, inputs)?;
    let frame = design.geometry.pixels() as f64;
    for (stage, totals, writes, peaks) in &report.buffer_access_stats {
        if let Some(bp) = design.buffers.iter_mut().find(|b| b.stage == *stage) {
            for (i, blk) in bp.blocks.iter_mut().enumerate() {
                blk.avg_accesses_per_cycle = totals[i] as f64 / frame;
                blk.avg_writes_per_cycle = writes[i] as f64 / frame;
                blk.peak_accesses = peaks[i];
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagen_dsl::compile;
    use imagen_mem::{ImageGeometry, MemBackend, MemorySpec};
    use imagen_schedule::{plan_design, ScheduleOptions};

    fn small_geom() -> ImageGeometry {
        ImageGeometry {
            width: 24,
            height: 16,
            pixel_bits: 16,
        }
    }

    fn ramp(geom: &ImageGeometry) -> Image {
        Image::from_fn(geom.width, geom.height, |x, y| {
            ((x * 7 + y * 13) % 251) as i64
        })
    }

    fn plan_and_sim(src: &str, ports: u32, coalesce: bool) -> SimReport {
        let dag = compile("t", src).unwrap();
        let geom = small_geom();
        let mut spec = MemorySpec::new(
            MemBackend::Asic {
                block_bits: 2 * geom.row_bits(),
            },
            ports,
        );
        if coalesce {
            spec = spec.with_coalescing();
        }
        let plan = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            imagen_mem::DesignStyle::Ours,
        )
        .unwrap();
        let input = ramp(&geom);
        simulate(&plan.dag, &plan.design, &[input]).unwrap()
    }

    const BLUR: &str = "input A; output B = im(x,y)
        (A(x-1,y-1)+A(x,y-1)+A(x+1,y-1)
        +A(x-1,y)  +A(x,y)  +A(x+1,y)
        +A(x-1,y+1)+A(x,y+1)+A(x+1,y+1)) / 9 end";

    const MULTI: &str = "input A;
        B = im(x,y) (A(x-1,y-1)+A(x+1,y+1)) / 2 end
        output C = im(x,y) A(x,y) + B(x-1,y-1) + B(x+1,y+1) end";

    #[test]
    fn blur_is_clean_dual_port() {
        let r = plan_and_sim(BLUR, 2, false);
        assert!(r.port_violations.is_empty(), "{:?}", r.port_violations);
        assert!(
            r.residency_violations.is_empty(),
            "{:?}",
            r.residency_violations
        );
        assert!(r.outputs_match_golden);
        assert!(r.is_clean());
        assert!(r.total_accesses > 0);
    }

    #[test]
    fn multi_consumer_clean_dual_port() {
        let r = plan_and_sim(MULTI, 2, false);
        assert!(
            r.is_clean(),
            "port={:?} res={:?}",
            r.port_violations,
            r.residency_violations
        );
    }

    #[test]
    fn single_port_fixynn_style_clean() {
        let r = plan_and_sim(MULTI, 1, false);
        assert!(
            r.is_clean(),
            "port={:?} res={:?}",
            r.port_violations,
            r.residency_violations
        );
    }

    #[test]
    fn coalesced_clean() {
        let r = plan_and_sim(BLUR, 2, true);
        assert!(
            r.is_clean(),
            "port={:?} res={:?}",
            r.port_violations,
            r.residency_violations
        );
        let r = plan_and_sim(MULTI, 2, true);
        assert!(
            r.is_clean(),
            "port={:?} res={:?}",
            r.port_violations,
            r.residency_violations
        );
    }

    const PYRAMID: &str = "input A;
        G = im(x,y) (A(x-1,y-1)+2*A(x,y-1)+A(x+1,y-1)
                    +2*A(x-1,y)+4*A(x,y)+2*A(x+1,y)
                    +A(x-1,y+1)+2*A(x,y+1)+A(x+1,y+1)) / 16 end
        D = downsample(2,2) im(x,y) G(x,y) end
        output U = upsample(2,2) im(x,y) D(x,y) end";

    #[test]
    fn multirate_pyramid_clean() {
        let r = plan_and_sim(PYRAMID, 2, false);
        assert!(
            r.is_clean(),
            "port={:?} res={:?} golden={}",
            r.port_violations,
            r.residency_violations,
            r.outputs_match_golden
        );
    }

    #[test]
    fn broken_schedule_detected() {
        // Start the consumer too early: residency (R1) must fire and the
        // output must diverge from golden.
        let dag = compile("t", BLUR).unwrap();
        let geom = small_geom();
        let spec = MemorySpec::new(
            MemBackend::Asic {
                block_bits: 2 * geom.row_bits(),
            },
            2,
        );
        let mut plan = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            imagen_mem::DesignStyle::Ours,
        )
        .unwrap();
        plan.design.start_cycles[1] = 1; // violates (SH-1)W+1
        let input = ramp(&geom);
        let r = simulate(&plan.dag, &plan.design, &[input]).unwrap();
        assert!(!r.residency_violations.is_empty());
        assert!(!r.outputs_match_golden);
        assert!(!r.is_clean());
    }

    #[test]
    fn undersized_buffer_detected() {
        // Shrink the buffer below the reuse distance: eviction (R2) fires.
        let dag = compile("t", BLUR).unwrap();
        let geom = small_geom();
        let spec = MemorySpec::new(
            MemBackend::Asic {
                block_bits: 2 * geom.row_bits(),
            },
            2,
        );
        let mut plan = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            imagen_mem::DesignStyle::Ours,
        )
        .unwrap();
        plan.design.buffers[0].phys_rows = 1;
        plan.design.start_cycles[1] += 2 * geom.width as u64; // keep R1 ok
        let input = ramp(&geom);
        let r = simulate(&plan.dag, &plan.design, &[input]).unwrap();
        assert!(
            r.residency_violations.iter().any(|v| !v.not_yet_produced),
            "{:?}",
            r.residency_violations
        );
    }

    #[test]
    fn annotation_fills_stats() {
        let dag = compile("t", BLUR).unwrap();
        let geom = small_geom();
        let spec = MemorySpec::new(
            MemBackend::Asic {
                block_bits: 2 * geom.row_bits(),
            },
            2,
        );
        let mut plan = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            imagen_mem::DesignStyle::Ours,
        )
        .unwrap();
        let input = ramp(&geom);
        let r = simulate_and_annotate(&plan.dag, &mut plan.design, &[input]).unwrap();
        assert!(r.is_clean());
        // Buffer of A: writer (1) + reader (3 rows) = ~4 accesses/cycle
        // spread over the blocks.
        let total: f64 = plan.design.buffers[0]
            .blocks
            .iter()
            .map(|b| b.avg_accesses_per_cycle)
            .sum();
        assert!(total > 3.0 && total <= 4.0, "got {total}");
    }

    #[test]
    fn latency_matches_schedule() {
        let dag = compile("t", BLUR).unwrap();
        let geom = small_geom();
        let spec = MemorySpec::new(
            MemBackend::Asic {
                block_bits: 2 * geom.row_bits(),
            },
            2,
        );
        let plan = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions::default(),
            imagen_mem::DesignStyle::Ours,
        )
        .unwrap();
        let input = ramp(&geom);
        let r = simulate(&plan.dag, &plan.design, &[input]).unwrap();
        let expected = plan.schedule.latency(&plan.dag, geom.width, geom.height);
        assert_eq!(r.latency, expected);
    }
}
