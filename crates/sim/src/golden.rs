//! The functional golden executor: runs a pipeline DAG on images in plain
//! software, defining the reference semantics every accelerator design
//! must match bit-exactly.
//!
//! Semantics: stages evaluate in topological order; a compute stage's
//! output pixel `(x, y)` is its kernel over producer pixels
//! `(x + dx, y + dy)` (normalized offsets) with clamp-to-edge sampling.
//! Rate-1 stage images share the frame dimensions (the paper's
//! assume-padding simplification, Sec. 5 footnote 2).
//!
//! Multirate stages scale their own grid: a stage at cumulative scale
//! `(cx, cy)` produces a `W/cx x H/cy` image. Taps always index the
//! *producer's* grid — a `downsample(fx,fy)` stage reads
//! `P(fx*x + dx, fy*y + dy)` and an `upsample(fx,fy)` stage reads
//! `P(floor(x/fx) + dx, floor(y/fy) + dy)`, clamped to the producer's
//! edges.

use crate::image::Image;
use imagen_ir::{Dag, Rate, StageId, StageKind};
use std::fmt;

/// Golden execution failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GoldenError {
    /// The number of provided input images does not match the DAG.
    InputCount {
        /// Inputs expected (number of input stages).
        expected: usize,
        /// Inputs provided.
        provided: usize,
    },
    /// An input image has the wrong dimensions.
    InputSize {
        /// Index of the offending input.
        input: usize,
    },
    /// A stage's cumulative rate does not divide the frame extents.
    IndivisibleExtent {
        /// Index of the offending stage.
        stage: usize,
    },
}

impl fmt::Display for GoldenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoldenError::InputCount { expected, provided } => write!(
                f,
                "pipeline has {expected} input stage(s) but {provided} image(s) were provided"
            ),
            GoldenError::InputSize { input } => {
                write!(f, "input image {input} has mismatched dimensions")
            }
            GoldenError::IndivisibleExtent { stage } => {
                write!(
                    f,
                    "cumulative rate of stage {stage} does not divide the frame extents"
                )
            }
        }
    }
}

impl std::error::Error for GoldenError {}

/// Result of a golden run: one image per stage.
#[derive(Clone, Debug)]
pub struct GoldenRun {
    images: Vec<Image>,
}

impl GoldenRun {
    /// The image produced by a stage.
    pub fn stage(&self, id: StageId) -> &Image {
        &self.images[id.index()]
    }

    /// Images of all output stages, in stage order.
    pub fn outputs<'a>(&'a self, dag: &'a Dag) -> impl Iterator<Item = (StageId, &'a Image)> {
        dag.stages()
            .filter(|(_, s)| s.is_output())
            .map(move |(id, _)| (id, &self.images[id.index()]))
    }
}

/// Executes `dag` on `inputs` (one image per input stage, in stage order).
///
/// # Errors
///
/// [`GoldenError`] when inputs are missing or mis-sized.
pub fn execute(dag: &Dag, inputs: &[Image]) -> Result<GoldenRun, GoldenError> {
    let input_ids: Vec<StageId> = dag
        .stages()
        .filter(|(_, s)| s.is_input())
        .map(|(id, _)| id)
        .collect();
    if input_ids.len() != inputs.len() {
        return Err(GoldenError::InputCount {
            expected: input_ids.len(),
            provided: inputs.len(),
        });
    }
    let (w, h) = if let Some(img) = inputs.first() {
        (img.width(), img.height())
    } else {
        return Err(GoldenError::InputCount {
            expected: input_ids.len(),
            provided: 0,
        });
    };
    for (i, img) in inputs.iter().enumerate() {
        if img.width() != w || img.height() != h {
            return Err(GoldenError::InputSize { input: i });
        }
    }

    let scales = dag.stage_scales();
    let mut images: Vec<Image> = Vec::with_capacity(dag.num_stages());
    let mut next_input = 0usize;
    for (id, stage) in dag.stages() {
        match stage.kind() {
            StageKind::Input => {
                images.push(inputs[next_input].clone());
                next_input += 1;
            }
            StageKind::Compute { kernel } => {
                let (cx, cy) = scales[id.index()];
                if u64::from(w) % cx != 0 || u64::from(h) % cy != 0 {
                    return Err(GoldenError::IndivisibleExtent { stage: id.index() });
                }
                let sw = (u64::from(w) / cx) as u32;
                let sh = (u64::from(h) / cy) as u32;
                let producers = stage.producers();
                let mut out = Image::new(sw, sh);
                for y in 0..sh {
                    for x in 0..sw {
                        // Anchor in the producer grid; taps offset from it.
                        let (bx, by) = match stage.rate() {
                            Rate::Unit => (i64::from(x), i64::from(y)),
                            Rate::Down { fx, fy } => (
                                i64::from(fx) * i64::from(x),
                                i64::from(fy) * i64::from(y),
                            ),
                            Rate::Up { fx, fy } => (
                                i64::from(x) / i64::from(fx),
                                i64::from(y) / i64::from(fy),
                            ),
                        };
                        let v = kernel.eval(&mut |slot, dx, dy| {
                            images[producers[slot].index()]
                                .get_clamped(bx + dx as i64, by + dy as i64)
                        });
                        out.set(x, y, v);
                    }
                }
                images.push(out);
            }
        }
    }
    Ok(GoldenRun { images })
}

#[cfg(test)]
mod tests {
    use super::*;
    use imagen_dsl::compile;

    fn ramp(w: u32, h: u32) -> Image {
        Image::from_fn(w, h, |x, y| (y * w + x) as i64)
    }

    #[test]
    fn identity_stage_copies() {
        let dag = compile("id", "input A; output B = im(x,y) A(x,y) end").unwrap();
        let input = ramp(8, 6);
        let run = execute(&dag, std::slice::from_ref(&input)).unwrap();
        let (_, out) = run.outputs(&dag).next().unwrap();
        assert_eq!(out, &input);
    }

    #[test]
    fn shift_uses_clamping() {
        let dag = compile("sh", "input A; output B = im(x,y) A(x-1,y-1) end").unwrap();
        let input = ramp(4, 4);
        let run = execute(&dag, std::slice::from_ref(&input)).unwrap();
        let (_, out) = run.outputs(&dag).next().unwrap();
        // Interior: shifted by the normalized window; corners clamp.
        // Normalization makes the stored tap (0,0) with the stage anchored
        // one pixel later, so the *normalized* semantics here are identity
        // of the normalized tap: check against direct evaluation instead.
        let k = dag
            .stage(imagen_ir::StageId::from_index(1))
            .kernel()
            .unwrap();
        let mut expect = Image::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                let v = k.eval(&mut |_, dx, dy| {
                    input.get_clamped(x as i64 + dx as i64, y as i64 + dy as i64)
                });
                expect.set(x, y, v);
            }
        }
        assert_eq!(out, &expect);
    }

    #[test]
    fn box_blur_values() {
        let dag = compile(
            "box",
            "input A; output B = im(x,y)
               (A(x-1,y-1)+A(x,y-1)+A(x+1,y-1)
               +A(x-1,y)  +A(x,y)  +A(x+1,y)
               +A(x-1,y+1)+A(x,y+1)+A(x+1,y+1)) / 9 end",
        )
        .unwrap();
        let input = Image::from_fn(8, 8, |_, _| 9);
        let run = execute(&dag, &[input]).unwrap();
        let (_, out) = run.outputs(&dag).next().unwrap();
        // Constant image: blur of constant 9 is 9 everywhere, clamping
        // included.
        assert!(out.data().iter().all(|&v| v == 9));
    }

    #[test]
    fn diamond_multi_producer() {
        let dag = compile(
            "d",
            "input A;
             B = im(x,y) A(x,y) + 1 end
             C = im(x,y) A(x,y) * 2 end
             output D = im(x,y) B(x,y) + C(x,y) end",
        )
        .unwrap();
        let input = ramp(5, 5);
        let run = execute(&dag, std::slice::from_ref(&input)).unwrap();
        let (_, out) = run.outputs(&dag).next().unwrap();
        for y in 0..5 {
            for x in 0..5 {
                let a = input.get(x, y);
                assert_eq!(out.get(x, y), (a + 1) + 2 * a);
            }
        }
    }

    #[test]
    fn downsample_reads_producer_grid() {
        let dag = compile(
            "ds",
            "input A; output B = downsample(2,2) im(x,y) A(x,y) end",
        )
        .unwrap();
        let input = ramp(8, 6);
        let run = execute(&dag, std::slice::from_ref(&input)).unwrap();
        let (_, out) = run.outputs(&dag).next().unwrap();
        assert_eq!((out.width(), out.height()), (4, 3));
        for y in 0..3 {
            for x in 0..4 {
                assert_eq!(out.get(x, y), input.get(2 * x, 2 * y));
            }
        }
    }

    #[test]
    fn upsample_replicates_producer_pixels() {
        let dag = compile(
            "us",
            "input A;
             D = downsample(2,2) im(x,y) A(x,y) end
             output U = upsample(2,2) im(x,y) D(x,y) end",
        )
        .unwrap();
        let input = ramp(8, 8);
        let run = execute(&dag, std::slice::from_ref(&input)).unwrap();
        let (_, out) = run.outputs(&dag).next().unwrap();
        assert_eq!((out.width(), out.height()), (8, 8));
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(out.get(x, y), input.get(x / 2 * 2, y / 2 * 2));
            }
        }
    }

    #[test]
    fn indivisible_extent_is_an_error() {
        let dag = compile(
            "ds",
            "input A; output B = downsample(2,2) im(x,y) A(x,y) end",
        )
        .unwrap();
        let input = ramp(7, 6);
        assert!(matches!(
            execute(&dag, std::slice::from_ref(&input)),
            Err(GoldenError::IndivisibleExtent { stage: 1 })
        ));
    }

    #[test]
    fn input_validation() {
        let dag = compile("id", "input A; output B = im(x,y) A(x,y) end").unwrap();
        assert!(matches!(
            execute(&dag, &[]),
            Err(GoldenError::InputCount { .. })
        ));
        let err = execute(&dag, &[ramp(4, 4), ramp(4, 4)]).unwrap_err();
        assert!(matches!(err, GoldenError::InputCount { .. }));
    }
}
