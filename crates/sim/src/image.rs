//! Pixel images for the functional executor and simulator.

use std::fmt;

/// A 2-D grayscale image with `i64` pixels (the software model of the
/// 16-bit hardware datapath; kernels never overflow the wider type).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Image {
    width: u32,
    height: u32,
    data: Vec<i64>,
}

impl Image {
    /// Creates a zero-filled image.
    pub fn new(width: u32, height: u32) -> Image {
        Image {
            width,
            height,
            data: vec![0; (width * height) as usize],
        }
    }

    /// Builds an image from a generator function `f(x, y)`.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> i64) -> Image {
        let mut img = Image::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, f(x, y));
            }
        }
        img
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds; use [`Image::get_clamped`] for stencil
    /// sampling.
    #[track_caller]
    pub fn get(&self, x: u32, y: u32) -> i64 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[(y * self.width + x) as usize]
    }

    /// Pixel at `(x, y)` with clamp-to-edge sampling for out-of-range
    /// coordinates (the boundary behaviour of both the golden executor
    /// and the generated hardware).
    pub fn get_clamped(&self, x: i64, y: i64) -> i64 {
        let cx = x.clamp(0, self.width as i64 - 1) as u32;
        let cy = y.clamp(0, self.height as i64 - 1) as u32;
        self.data[(cy * self.width + cx) as usize]
    }

    /// Sets pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[track_caller]
    pub fn set(&mut self, x: u32, y: u32, v: i64) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[(y * self.width + x) as usize] = v;
    }

    /// Raw row-major pixel data.
    pub fn data(&self) -> &[i64] {
        &self.data
    }

    /// Pixels in raster order (row-major, the order the generated
    /// hardware streams a frame) — what testbench vectors and stream
    /// comparisons consume.
    pub fn raster(&self) -> impl Iterator<Item = i64> + '_ {
        self.data.iter().copied()
    }

    /// Builds an image from a raster-order pixel stream.
    ///
    /// # Panics
    ///
    /// Panics when the stream length is not `width * height`.
    #[track_caller]
    pub fn from_raster(width: u32, height: u32, pixels: impl IntoIterator<Item = i64>) -> Image {
        let data: Vec<i64> = pixels.into_iter().collect();
        assert_eq!(
            data.len(),
            (width * height) as usize,
            "raster stream length must match the frame"
        );
        Image {
            width,
            height,
            data,
        }
    }

    /// Number of pixels that differ from `other`.
    pub fn diff_count(&self, other: &Image) -> usize {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        self.data
            .iter()
            .zip(&other.data)
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl fmt::Display for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Image({}x{})", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let img = Image::from_fn(4, 3, |x, y| (y * 4 + x) as i64);
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(3, 2), 11);
        assert_eq!(img.data().len(), 12);
    }

    #[test]
    fn clamped_sampling() {
        let img = Image::from_fn(4, 3, |x, y| (y * 4 + x) as i64);
        assert_eq!(img.get_clamped(-5, -5), 0);
        assert_eq!(img.get_clamped(10, 10), 11);
        assert_eq!(img.get_clamped(2, 1), 6);
    }

    #[test]
    fn diff_count() {
        let a = Image::from_fn(4, 4, |x, _| x as i64);
        let mut b = a.clone();
        assert_eq!(a.diff_count(&b), 0);
        b.set(1, 1, 99);
        b.set(2, 2, 99);
        assert_eq!(a.diff_count(&b), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn strict_get_panics() {
        let img = Image::new(2, 2);
        let _ = img.get(2, 0);
    }

    #[test]
    fn raster_round_trips() {
        let img = Image::from_fn(4, 3, |x, y| (y * 4 + x) as i64);
        let stream: Vec<i64> = img.raster().collect();
        assert_eq!(stream, (0..12).collect::<Vec<i64>>());
        let back = Image::from_raster(4, 3, stream);
        assert_eq!(back, img);
    }

    #[test]
    #[should_panic(expected = "raster stream length")]
    fn from_raster_rejects_short_streams() {
        let _ = Image::from_raster(4, 3, 0..5);
    }
}
