//! # imagen-sim
//!
//! Functional and cycle-level simulation for the [ImaGen] accelerator
//! generator — the reproduction of the paper's ASIC-backend simulator
//! (Sec. 7).
//!
//! * [`Image`] — pixel frames;
//! * [`execute`] — the golden executor: reference software semantics of a
//!   pipeline DAG;
//! * [`simulate`] — the cycle-level simulator: replays a planned
//!   [`imagen_mem::Design`] with real rotating line buffers and
//!   shift-register arrays, verifying the three no-stall requirements
//!   (R1 causality, R2 no premature eviction, R3 port discipline) and
//!   bit-exactness against the golden run, while counting every memory
//!   access for the power model;
//! * [`simulate_and_annotate`] — writes the measured per-block access
//!   statistics back into the design.
//!
//! [ImaGen]: https://arxiv.org/abs/2304.03352

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cycle;
mod golden;
mod image;

pub use cycle::{
    simulate, simulate_and_annotate, ResidencyViolation, SimError, SimPortViolation, SimReport,
};
pub use golden::{execute, GoldenError, GoldenRun};
pub use image::Image;
