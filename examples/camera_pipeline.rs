//! Camera pipeline: compile the paper's Canny-m edge detector, run the
//! cycle-level simulator on a synthetic frame, and verify the design
//! sustains one pixel per cycle with bit-exact output — the Sec. 8.1
//! experiment in miniature, plus a side-by-side with the baselines.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example camera_pipeline
//! ```

use imagen::algos::{sample_pattern, Algorithm, TestPattern};
use imagen::baselines::{generate_darkroom, generate_fixynn, generate_soda};
use imagen::sim::{simulate, Image};
use imagen::{Compiler, ImageGeometry, MemBackend, MemorySpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geom = ImageGeometry::p320();
    let backend = MemBackend::asic_default();
    let alg = Algorithm::CannyM;
    let dag = alg.build();

    println!("Compiling {} ({} stages)...", alg.name(), dag.num_stages());
    let ours = Compiler::new(geom, MemorySpec::new(backend, 2)).compile_dag(&dag)?;

    // A deterministic synthetic frame: bars with impulse noise, the kind
    // of content an edge detector actually responds to.
    let frame = Image::from_fn(geom.width, geom.height, |x, y| {
        sample_pattern(TestPattern::Bars, 2023, x, y)
    });

    println!("Simulating {} cycles...", geom.pixels() + 2000);
    let report = simulate(&ours.plan.dag, &ours.plan.design, &[frame])?;
    println!(
        "  throughput        : {} px/cycle",
        report.throughput_px_per_cycle
    );
    println!("  port violations   : {}", report.port_violations.len());
    println!(
        "  residency faults  : {}",
        report.residency_violations.len()
    );
    println!("  bit-exact output  : {}", report.outputs_match_golden);
    println!("  frame latency     : {} cycles", report.latency);
    println!("  memory accesses   : {}", report.total_accesses);
    assert!(report.is_clean(), "the generated design must not stall");

    println!("\nBaseline comparison (same algorithm, same frame size):\n");
    println!(
        "{:10} {:>10} {:>8} {:>12}",
        "design", "SRAM KB", "blocks", "mem mW"
    );
    let fx = generate_fixynn(&dag, &geom, backend)?;
    let dk = generate_darkroom(&dag, &geom, backend)?;
    let soda = generate_soda(&dag, &geom, backend)?;
    for plan in [&fx, &dk, &soda, &ours.plan] {
        println!(
            "{:10} {:>10.1} {:>8} {:>12.2}",
            plan.design.style.label(),
            plan.design.sram_kb(),
            plan.design.block_count(),
            plan.design.memory_power_mw()
        );
    }
    Ok(())
}
