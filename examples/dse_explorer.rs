//! Design-space exploration: sweep per-stage DP/DPLC memory
//! configurations for an algorithm and print the Pareto frontier — the
//! paper's Sec. 8.5 workflow for ASIC designers.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example dse_explorer
//! ```

use imagen::algos::Algorithm;
use imagen::dse::{judicious_lc, sweep};
use imagen::{ImageGeometry, MemBackend};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geom = ImageGeometry::p320();
    let backend = MemBackend::asic_default();
    let alg = Algorithm::DenoiseM;
    let dag = alg.build();

    println!(
        "Sweeping {} buffered stages of {} (2^{} = {} configurations)...\n",
        dag.buffered_stages().len(),
        alg.name(),
        dag.buffered_stages().len(),
        1usize << dag.buffered_stages().len()
    );
    let res = sweep(&dag, &geom, backend)?;
    let front = res.pareto_front();

    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>9}",
        "point", "DPLC", "area mm²", "power mW", "Pareto"
    );
    for (i, p) in res.points.iter().enumerate() {
        let mark = if front.contains(&i) { "  *" } else { "" };
        println!(
            "{:>6} {:>6} {:>12.4} {:>12.3} {:>9}",
            format!("p{i}"),
            p.dplc_count(),
            p.area_mm2,
            p.power_mw,
            mark
        );
    }

    println!("\nJudicious coalescing (greedy SRAM descent):");
    let (choices, best) = judicious_lc(&dag, &geom, backend)?;
    for (stage, choice) in &choices {
        let name = dag
            .stage(imagen::ir::StageId::from_index(*stage))
            .name()
            .to_string();
        println!("  {:10} -> {}", name, choice.label());
    }
    println!(
        "  chosen design: {:.1} KB SRAM, {:.4} mm², {:.3} mW",
        best.plan.design.sram_kb(),
        best.plan.design.total_area_mm2(),
        best.plan.design.total_power_mw()
    );
    Ok(())
}
