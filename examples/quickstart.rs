//! Quickstart: compile a small pipeline end to end and inspect every
//! artifact the compiler produces — schedule, line-buffer configuration,
//! cost estimates and Verilog.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use imagen::{Compiler, ImageGeometry, MemBackend, MemorySpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example (Fig. 1 / Sec. 4): a three-stage
    // pipeline where K2 reads both K0 and K1 — the multiple-consumer
    // pattern that defeats naive line-buffer generators.
    let source = "
        input K0;
        // K1 reads a 3x3 window from K0.
        K1 = im(x,y)
            (K0(x-1,y-1) + K0(x,y-1) + K0(x+1,y-1)
           + K0(x-1,y)   + K0(x,y)   + K0(x+1,y)
           + K0(x-1,y+1) + K0(x,y+1) + K0(x+1,y+1)) / 9
        end
        // K2 reads a 2x2 window from K0 and a 3x3 window from K1.
        output K2 = im(x,y)
            K0(x,y) + K0(x+1,y+1)
          + K1(x-1,y-1) + K1(x,y) + K1(x+1,y+1)
        end
    ";

    // Hardware description: 320p frames, dual-port 32 Kbit SRAM macros.
    let geom = ImageGeometry::p320();
    let spec = MemorySpec::new(MemBackend::asic_default(), 2);

    let out = Compiler::new(geom, spec).compile_source("fig1", source)?;
    let design = &out.plan.design;

    println!("## Schedule (start cycles from the ILP)\n");
    for (id, stage) in out.plan.dag.stages() {
        println!(
            "  {:10} starts at cycle {}",
            stage.name(),
            out.plan.schedule.start(id)
        );
    }

    println!("\n## Line buffers\n");
    for buf in &design.buffers {
        let name = out
            .plan
            .dag
            .stage(imagen::ir::StageId::from_index(buf.stage))
            .name();
        println!(
            "  {:10} {} rows ({} physical) in {} block(s), {} rows/block",
            name,
            buf.logical_rows,
            buf.phys_rows,
            buf.blocks.len(),
            buf.rows_per_block
        );
    }

    println!("\n## Costs\n");
    println!("  SRAM allocated : {:.1} KB", design.sram_kb());
    println!("  memory area    : {:.3} mm²", design.memory_area_mm2());
    println!("  total area     : {:.3} mm²", design.total_area_mm2());
    println!("  memory power   : {:.2} mW", design.memory_power_mw());
    println!(
        "  latency        : {} cycles/frame",
        out.plan
            .schedule
            .latency(&out.plan.dag, geom.width, geom.height)
    );
    println!(
        "  compile time   : {:.2} ms (front end {:.2} + optimize {:.2} + codegen {:.2})",
        out.timing.total_us() as f64 / 1e3,
        out.timing.frontend_us as f64 / 1e3,
        out.timing.optimize_us as f64 / 1e3,
        out.timing.codegen_us as f64 / 1e3,
    );

    println!("\n## Verilog (first 24 lines of {})\n", {
        let lines = out.verilog.lines().count();
        format!("{lines} total")
    });
    for line in out.verilog.lines().take(24) {
        println!("  {line}");
    }
    Ok(())
}
