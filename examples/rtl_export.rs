//! RTL export: compile every Tbl. 3 algorithm and write its synthesizable
//! Verilog to `target/rtl/`, verifying each netlist structurally — the
//! hand-off point to an FPGA/ASIC synthesis flow.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example rtl_export
//! ```

use imagen::algos::Algorithm;
use imagen::rtl::verify_structure;
use imagen::{Compiler, ImageGeometry, MemBackend, MemorySpec};
use std::fs;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geom = ImageGeometry::p320();
    let spec = MemorySpec::new(MemBackend::asic_default(), 2);
    let compiler = Compiler::new(geom, spec);

    let out_dir = PathBuf::from("target/rtl");
    fs::create_dir_all(&out_dir)?;

    println!(
        "{:12} {:>8} {:>9} {:>7} {:>9}",
        "algorithm", "modules", "SRAMs", "lines", "compile"
    );
    for alg in Algorithm::all() {
        let out = compiler.compile_dag(&alg.build())?;
        let summary = verify_structure(&out.netlist)?;
        let path = out_dir.join(format!("{}.v", alg.name().to_lowercase()));
        fs::write(&path, &out.verilog)?;
        println!(
            "{:12} {:>8} {:>9} {:>7} {:>7.1}ms",
            alg.name(),
            summary.modules,
            summary.sram_instances,
            out.verilog.lines().count(),
            out.timing.total_us() as f64 / 1e3
        );
    }
    println!("\nVerilog written to {}", out_dir.display());
    Ok(())
}
