//! Offline stand-in for the subset of [`criterion` 0.5](https://docs.rs/criterion)
//! that this workspace's benches use: `Criterion::benchmark_group`,
//! `sample_size`/`measurement_time`, `bench_function`/`bench_with_input`,
//! `Bencher::iter`, `BenchmarkId` and the `criterion_group!`/
//! `criterion_main!` macros.
//!
//! The build container has no crates.io access, so the workspace vendors
//! this minimal timing harness instead. It has none of criterion's
//! statistics: each benchmark runs one warm-up iteration plus `sample_size`
//! timed iterations (capped by the group's `measurement_time`) and prints
//! min / mean / max wall-clock per iteration. Set `CRITERION_SHIM_SAMPLES`
//! to override the per-group sample count (useful as a `=1` smoke mode
//! in CI).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value, e.g. a problem size.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new<D: Display>(function_name: &str, parameter: D) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to the closure given to `bench_function`; runs and times the
/// benchmarked routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_budget: usize,
    time_budget: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        let started = Instant::now();
        for _ in 0..self.sample_budget {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > self.time_budget {
                break;
            }
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Bounds the wall-clock spent per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let samples = std::env::var("CRITERION_SHIM_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.sample_size)
            .max(1);
        let mut b = Bencher {
            samples: Vec::with_capacity(samples),
            sample_budget: samples,
            time_budget: self.measurement_time,
        };
        f(&mut b);
        let n = b.samples.len().max(1);
        let total: Duration = b.samples.iter().sum();
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let max = b.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{}/{}: {} samples, min {:.3?}, mean {:.3?}, max {:.3?}",
            self.name,
            id.0,
            b.samples.len(),
            min,
            total / n as u32,
            max
        );
    }

    /// Benchmarks `f`.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), f);
        self
    }

    /// Benchmarks `f` against a borrowed input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        self.run(id.into(), |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in this shim beyond dropping it).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let name = "criterion".to_string();
        let mut group = BenchmarkGroup {
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            _criterion: self,
        };
        group.run(id.into(), f);
        self
    }
}

/// Bundles benchmark functions into a callable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(runs >= 4, "warm-up plus timed samples, got {runs}");
    }

    criterion_group!(benches, demo);

    #[test]
    fn harness_runs_benchmarks() {
        benches();
    }
}
