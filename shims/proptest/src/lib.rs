//! Offline stand-in for the subset of [`proptest` 1.x](https://docs.rs/proptest)
//! that this workspace uses.
//!
//! The build container has no crates.io access, so the workspace vendors the
//! API surface its property tests need: the [`proptest!`] macro, integer
//! range strategies, tuples of strategies, [`collection::vec`],
//! [`array::uniform2`]/[`array::uniform4`], [`strategy::Strategy::prop_map`], the
//! `prop_assert*` macros, [`test_runner::ProptestConfig`] and
//! [`test_runner::TestCaseError`].
//!
//! Unlike real proptest there is no shrinking and no persistence file:
//! every test draws its cases from a SplitMix64 stream seeded by hashing
//! the test's `module_path!()::name`, so a failure reproduces exactly on
//! every run and on every machine, and the failing inputs are printed in
//! the panic message. Set `PROPTEST_SHIM_SEED=<u64>` to perturb the stream
//! when hunting for new counterexamples.

#![forbid(unsafe_code)]

pub mod test_runner {
    use std::fmt;

    /// Run-time configuration for a [`proptest!`](crate::proptest) block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test executes.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// A failed test case (the only variant this shim models is `fail`).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Rejects the current case with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic SplitMix64 stream used to generate cases.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from the fully qualified test name (FNV-1a),
        /// optionally perturbed by `PROPTEST_SHIM_SEED`.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SHIM_SEED") {
                if let Ok(extra) = s.parse::<u64>() {
                    h ^= extra.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                }
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of values for property tests.
    ///
    /// This shim drops proptest's shrinking machinery: a strategy is just a
    /// deterministic function of the RNG stream.
    pub trait Strategy {
        /// The type of value this strategy yields.
        type Value;

        /// Draws one value from the stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "cannot sample empty range {:?}..{:?}",
                        self.start,
                        self.end
                    );
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    let off = raw % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<i128> {
        type Value = i128;

        fn generate(&self, rng: &mut TestRng) -> i128 {
            assert!(
                self.start < self.end,
                "cannot sample empty range {}..{}",
                self.start,
                self.end
            );
            let span = (self.end - self.start) as u128;
            let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            self.start + (raw % span) as i128
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with length drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for fixed-size arrays whose elements all come from the same
    /// element strategy.
    #[derive(Clone, Debug)]
    pub struct UniformArrayStrategy<S, const N: usize> {
        element: S,
    }

    /// An `[T; 2]` drawn from two independent samples of `element`.
    pub fn uniform2<S: Strategy>(element: S) -> UniformArrayStrategy<S, 2> {
        UniformArrayStrategy { element }
    }

    /// An `[T; 3]` drawn from three independent samples of `element`.
    pub fn uniform3<S: Strategy>(element: S) -> UniformArrayStrategy<S, 3> {
        UniformArrayStrategy { element }
    }

    /// An `[T; 4]` drawn from four independent samples of `element`.
    pub fn uniform4<S: Strategy>(element: S) -> UniformArrayStrategy<S, 4> {
        UniformArrayStrategy { element }
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }
}

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Map, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares deterministic property tests.
///
/// Supports the common form used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, ys in proptest::collection::vec(0i64..9, 0..5)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        // Bodies that unconditionally panic or return make the generated
        // trailing `Ok(())` unreachable; that is expected.
        #[allow(unreachable_code)]
        fn $name() {
            use $crate::strategy::Strategy as _;
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = ($strat).generate(&mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                // catch_unwind so a plain panic!/unwrap inside the body
                // still gets its generated inputs reported before the
                // panic resumes.
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> ::core::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > { $body ::core::result::Result::Ok(()) },
                    ),
                );
                match __result {
                    ::core::result::Result::Ok(::core::result::Result::Ok(())) => {}
                    ::core::result::Result::Ok(::core::result::Result::Err(__e)) => {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n    inputs: {}",
                            stringify!($name),
                            __case,
                            __cfg.cases,
                            __e,
                            __inputs,
                        );
                    }
                    ::core::result::Result::Err(__payload) => {
                        eprintln!(
                            "proptest {} panicked at case {}/{}\n    inputs: {}",
                            stringify!($name),
                            __case,
                            __cfg.cases,
                            __inputs,
                        );
                        ::std::panic::resume_unwind(__payload);
                    }
                }
            }
        }
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_are_deterministic_per_test_name() {
        let mut a = TestRng::for_test("shim::t1");
        let mut b = TestRng::for_test("shim::t1");
        let s = 0u64..1000;
        let xs: Vec<u64> = (0..32).map(|_| s.clone().generate(&mut a)).collect();
        let ys: Vec<u64> = (0..32).map(|_| s.clone().generate(&mut b)).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().all(|&x| x < 1000));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(2))]

        /// A panic inside the body must propagate (after the input dump)
        /// so `#[should_panic]` and ordinary test failure still work.
        #[test]
        #[should_panic(expected = "deliberate body panic")]
        fn body_panics_propagate(_x in 0u64..4) {
            panic!("deliberate body panic");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro machinery itself: tuples, vec, prop_map, arrays.
        #[test]
        fn shim_machinery_works(
            x in 3usize..17,
            pair in (0i64..5, -5i64..0),
            ys in crate::collection::vec(0i128..9, 2..6),
            arr in crate::array::uniform4(-4i64..5),
            mapped in (0u32..10).prop_map(|v| v * 2),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(pair.0 >= 0 && pair.1 < 0);
            prop_assert!(ys.len() >= 2 && ys.len() < 6);
            prop_assert!(ys.iter().all(|&y| (0..9).contains(&y)));
            prop_assert!(arr.iter().all(|&a| (-4..5).contains(&a)));
            prop_assert_eq!(mapped % 2, 0);
            prop_assert_ne!(mapped, 21);
        }
    }
}
