//! Offline stand-in for the subset of [`rand` 0.8](https://docs.rs/rand/0.8)
//! that this workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`]
//! and [`Rng::gen_range`] over half-open integer ranges.
//!
//! The container this repo builds in has no access to crates.io, so the
//! workspace vendors the small API surface it needs. The generator is
//! SplitMix64 — deliberately simple, fully deterministic in the seed, and
//! *not* the same stream as the real `StdRng` (ChaCha12). Every caller in
//! this repo seeds explicitly and only asserts on properties that hold for
//! any reasonable stream, so the difference is unobservable to the tests.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seeding interface: construct a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be uniformly sampled from a half-open [`Range`].
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[range.start, range.end)` given a raw
    /// 64-bit draw. Panics if the range is empty.
    fn sample(range: Range<Self>, raw: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(range: Range<Self>, raw: u64) -> Self {
                assert!(
                    range.start < range.end,
                    "cannot sample empty range {:?}..{:?}",
                    range.start,
                    range.end
                );
                let span = (range.end as i128 - range.start as i128) as u128;
                let off = (raw as u128) % span;
                (range.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Random-number-generator interface (the sliver of `rand::Rng` we use).
pub trait Rng {
    /// Returns the next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from the half-open integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let raw = self.next_u64();
        T::sample(range, raw)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..6);
            assert!((-5..6).contains(&w));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(4usize..4);
    }
}
