//! # ImaGen
//!
//! A general framework for generating memory- and power-efficient image
//! processing accelerators — a from-scratch Rust reproduction of the
//! ISCA 2023 paper by Ujjainkar, Leng and Zhu ([arXiv:2304.03352]).
//!
//! Given an image-processing pipeline in a Darkroom-like DSL and a
//! description of the on-chip memory available (block sizes and port
//! counts), ImaGen emits a line-buffered accelerator — schedule,
//! line-buffer configuration and synthesizable Verilog — whose on-chip
//! memory is minimized by an exact integer linear program while
//! guaranteeing full throughput of one pixel per cycle.
//!
//! This facade crate re-exports the subsystem crates:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`dsl`] | `imagen-dsl` | the language front end |
//! | [`ir`] | `imagen-ir` | pipeline DAG, windows, transforms |
//! | [`ilp`] | `imagen-ilp` | exact rational simplex + branch & bound |
//! | [`schedule`] | `imagen-schedule` | the constrained-optimization core |
//! | [`mem`] | `imagen-mem` | memory specs, cost models, `Design` |
//! | [`sim`] | `imagen-sim` | golden executor + cycle-level simulator |
//! | [`rtl`] | `imagen-rtl` | Verilog generation |
//! | [`power`] | `imagen-power` | activity-based energy measurement + clock gating |
//! | [`baselines`] | `imagen-baselines` | FixyNN, SODA, Darkroom |
//! | [`algos`] | `imagen-algos` | the Tbl. 3 evaluation workloads |
//! | [`dse`] | `imagen-dse` | design-space exploration |
//!
//! The most common entry point is [`Compiler`]:
//!
//! ```
//! use imagen::{Compiler, ImageGeometry, MemBackend, MemorySpec};
//!
//! let geom = ImageGeometry { width: 64, height: 48, pixel_bits: 16 };
//! let spec = MemorySpec::new(MemBackend::Asic { block_bits: 4096 }, 2);
//! let out = Compiler::new(geom, spec).compile_source("sobelish", "
//!     input raw;
//!     output grad = im(x,y)
//!         abs(raw(x+1,y) - raw(x-1,y)) + abs(raw(x,y+1) - raw(x,y-1))
//!     end
//! ")?;
//! println!("SRAM: {:.1} KB over {} blocks",
//!          out.plan.design.sram_kb(), out.plan.design.block_count());
//! # Ok::<(), imagen::CompileError>(())
//! ```
//!
//! [arXiv:2304.03352]: https://arxiv.org/abs/2304.03352

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use imagen_algos as algos;
pub use imagen_analysis as analysis;
pub use imagen_baselines as baselines;
pub use imagen_dse as dse;
pub use imagen_dsl as dsl;
pub use imagen_ilp as ilp;
pub use imagen_ir as ir;
pub use imagen_mem as mem;
pub use imagen_power as power;
pub use imagen_rtl as rtl;
pub use imagen_schedule as schedule;
pub use imagen_sim as sim;

pub use imagen_core::{
    CompileCache, CompileError, CompileOutput, CompileTiming, Compiler, Session,
};
pub use imagen_mem::{Design, DesignStyle, ImageGeometry, MemBackend, MemorySpec};
pub use imagen_schedule::{Plan, ScheduleOptions, SizeObjective};
