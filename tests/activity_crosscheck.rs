//! Cross-check of the two independent access-counting paths: the cycle
//! simulator's per-block annotations (`imagen_sim::simulate_and_annotate`
//! — the counts that feed the analytic power model) versus the netlist
//! interpreter's activity trace (`imagen_rtl::interpret_with_trace` —
//! the counts that feed the measured energy model).
//!
//! Both count SRAM accesses with the same conventions (same-address
//! reads merged per cycle, one write per producer cycle, FIFO segments
//! at the synthetic one-push-one-pop rate), but through entirely
//! separate code paths: the simulator walks the `Design`'s block plans,
//! the interpreter walks the elaborated `Netlist`. They must agree
//! block for block, for the three `exp_power_breakdown` algorithms ×
//! three styles.

use imagen::algos::Algorithm;
use imagen::baselines::{generate_darkroom, generate_fixynn, generate_soda};
use imagen::mem::{DesignStyle, ImageGeometry, MemBackend};
use imagen::rtl::{build_netlist, interpret_with_trace, BitWidths};
use imagen::sim::{simulate_and_annotate, Image};
use imagen::{Compiler, MemorySpec};

fn geom() -> ImageGeometry {
    ImageGeometry {
        width: 48,
        height: 26,
        pixel_bits: 16,
    }
}

fn backend() -> MemBackend {
    MemBackend::Asic {
        block_bits: 2 * geom().row_bits(),
    }
}

fn plan_for(alg: Algorithm, style: DesignStyle) -> imagen::Plan {
    let dag = alg.build();
    let g = geom();
    match style {
        DesignStyle::Soda => generate_soda(&dag, &g, backend()).unwrap(),
        DesignStyle::FixyNn => generate_fixynn(&dag, &g, backend()).unwrap(),
        DesignStyle::Darkroom => generate_darkroom(&dag, &g, backend()).unwrap(),
        _ => {
            Compiler::new(g, MemorySpec::new(backend(), 2))
                .compile_dag(&dag)
                .unwrap()
                .plan
        }
    }
}

#[test]
fn interpreter_access_counts_match_simulator_annotations() {
    let g = geom();
    let input = Image::from_fn(g.width, g.height, |x, y| ((x * 13 + y * 31) % 199) as i64);
    for alg in [Algorithm::UnsharpM, Algorithm::DenoiseM, Algorithm::CannyM] {
        for style in [DesignStyle::Soda, DesignStyle::Ours, DesignStyle::FixyNn] {
            let mut plan = plan_for(alg, style);
            let report =
                simulate_and_annotate(&plan.dag, &mut plan.design, std::slice::from_ref(&input))
                    .unwrap();
            assert!(
                report.port_violations.is_empty(),
                "{} {style:?}: {:?}",
                alg.name(),
                report.port_violations
            );

            let net = build_netlist(&plan.dag, &plan.design, &BitWidths::default());
            let (_, trace) = interpret_with_trace(&net, std::slice::from_ref(&input)).unwrap();

            let frame = plan.design.geometry.pixels();
            assert_eq!(
                plan.design.buffers.len(),
                trace.buffers.len(),
                "{} {style:?}: trace parallels the design",
                alg.name()
            );
            for (bp, ba) in plan.design.buffers.iter().zip(&trace.buffers) {
                assert_eq!(bp.stage, ba.stage);
                assert_eq!(bp.blocks.len(), ba.block_reads.len());
                for (i, blk) in bp.blocks.iter().enumerate() {
                    let interp_rate = ba.avg_accesses_per_cycle(i, frame);
                    let interp_writes = ba.avg_writes_per_cycle(i, frame);
                    assert!(
                        (blk.avg_accesses_per_cycle - interp_rate).abs() < 1e-12,
                        "{} {style:?} stage {} block {i}: sim {} vs interp {}",
                        alg.name(),
                        bp.stage,
                        blk.avg_accesses_per_cycle,
                        interp_rate
                    );
                    assert!(
                        (blk.avg_writes_per_cycle - interp_writes).abs() < 1e-12,
                        "{} {style:?} stage {} block {i}: sim writes {} vs interp {}",
                        alg.name(),
                        bp.stage,
                        blk.avg_writes_per_cycle,
                        interp_writes
                    );
                    assert_eq!(
                        blk.peak_accesses,
                        ba.block_peaks[i],
                        "{} {style:?} stage {} block {i}: peak mismatch",
                        alg.name(),
                        bp.stage
                    );
                }
            }
        }
    }
}
