//! End-to-end integration: every Tbl. 3 algorithm × every generator is
//! compiled, simulated cycle by cycle, and verified against the golden
//! executor — the repository's strongest correctness statement.

use imagen::algos::{sample_pattern, Algorithm, TestPattern};
use imagen::baselines::{generate_darkroom, generate_fixynn, generate_soda};
use imagen::rtl::{build_netlist, emit_verilog, interpret, verify_all, BitWidths};
use imagen::sim::{simulate, Image};
use imagen::{Compiler, DesignStyle, ImageGeometry, MemBackend, MemorySpec, Plan};

/// Small frames keep debug-mode simulation fast while exercising every
/// window shape (the tallest stencil is 18 rows, so height > 18 + slack).
fn geom() -> ImageGeometry {
    ImageGeometry {
        width: 40,
        height: 30,
        pixel_bits: 16,
    }
}

fn backend() -> MemBackend {
    // Blocks hold two rows at this width so coalescing is exercised.
    MemBackend::Asic {
        block_bits: 2 * 40 * 16,
    }
}

fn frame(seed: u64) -> Image {
    let g = geom();
    Image::from_fn(g.width, g.height, |x, y| {
        sample_pattern(TestPattern::Noise, seed, x, y)
    })
}

fn assert_clean(alg: Algorithm, label: &str, plan: &Plan) {
    let report = simulate(&plan.dag, &plan.design, &[frame(7)])
        .unwrap_or_else(|e| panic!("{} {label}: sim failed: {e}", alg.name()));
    assert!(
        report.is_clean(),
        "{} {label}: ports={:?} residency={:?} functional={}",
        alg.name(),
        report.port_violations,
        report.residency_violations,
        report.outputs_match_golden
    );
    assert!(plan.design.ports_respected(), "{} {label}", alg.name());
}

#[test]
fn ours_all_algorithms_clean() {
    for alg in Algorithm::all() {
        let out = Compiler::new(geom(), MemorySpec::new(backend(), 2))
            .compile_dag(&alg.build())
            .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        assert_clean(alg, "Ours", &out.plan);
    }
}

#[test]
fn ours_lc_all_algorithms_clean() {
    for alg in Algorithm::all() {
        let out = Compiler::new(geom(), MemorySpec::new(backend(), 2).with_coalescing())
            .compile_dag(&alg.build())
            .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        assert_clean(alg, "Ours+LC", &out.plan);
    }
}

#[test]
fn fixynn_all_algorithms_clean() {
    for alg in Algorithm::all() {
        let plan = generate_fixynn(&alg.build(), &geom(), backend())
            .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        assert_clean(alg, "FixyNN", &plan);
    }
}

#[test]
fn darkroom_all_algorithms_clean() {
    for alg in Algorithm::all() {
        let plan = generate_darkroom(&alg.build(), &geom(), backend())
            .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        assert_clean(alg, "Darkroom", &plan);
        // Linearized pipelines of multi-consumer algorithms carry relays.
        if alg.expected_multi_consumer() > 0 {
            assert!(plan.dag.stats().relay_stages > 0, "{}", alg.name());
        }
    }
}

#[test]
fn soda_all_algorithms_functional() {
    for alg in Algorithm::all() {
        let plan = generate_soda(&alg.build(), &geom(), backend())
            .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        let report = simulate(&plan.dag, &plan.design, &[frame(9)]).unwrap();
        // FIFO dataflow designs are stall-free by construction; the
        // rotating model must still be residency-clean and bit-exact.
        assert!(
            report.residency_violations.is_empty() && report.outputs_match_golden,
            "{}: residency={:?} functional={}",
            alg.name(),
            report.residency_violations,
            report.outputs_match_golden
        );
        assert_eq!(plan.design.style, DesignStyle::Soda);
    }
}

#[test]
fn rtl_generates_and_verifies_for_all() {
    for alg in Algorithm::all() {
        let out = Compiler::new(geom(), MemorySpec::new(backend(), 2))
            .compile_dag(&alg.build())
            .unwrap();
        let report = verify_all(&out.netlist);
        assert!(report.is_clean(), "{}: {:?}", alg.name(), report.errors);
        let summary = report.summary;
        assert!(summary.modules >= alg.expected_stages(), "{}", alg.name());
        assert!(summary.sram_instances > 0, "{}", alg.name());
        assert_eq!(
            out.verilog,
            emit_verilog(&out.netlist),
            "{}: cached text is the netlist's rendering",
            alg.name()
        );
    }
}

#[test]
fn netlist_interpretation_closes_the_loop_for_all() {
    // The structure the Verilog is printed from is itself executed and
    // must match the cycle-level simulator stream for stream. (The
    // exhaustive golden/simulator/interpreter differential — both width
    // regimes, random frames — lives in tests/netlist_differential.rs.)
    for alg in Algorithm::all() {
        let out = Compiler::new(geom(), MemorySpec::new(backend(), 2))
            .compile_dag(&alg.build())
            .unwrap();
        let input = frame(11);
        let sim = simulate(
            &out.plan.dag,
            &out.plan.design,
            std::slice::from_ref(&input),
        )
        .unwrap();
        assert!(sim.is_clean(), "{}", alg.name());
        let wide = build_netlist(&out.plan.dag, &out.plan.design, &BitWidths::wide());
        let run = interpret(&wide, std::slice::from_ref(&input))
            .unwrap_or_else(|e| panic!("{}: {e}", alg.name()));
        assert_eq!(
            run.output_images,
            sim.output_images,
            "{}: netlist vs cycle model",
            alg.name()
        );
        assert_eq!(run.latency, sim.latency as u64, "{}", alg.name());
    }
}

#[test]
fn dsl_text_and_builder_agree() {
    // Compiling the printed DSL of a DAG yields an identical design.
    for alg in [Algorithm::UnsharpM, Algorithm::DenoiseM] {
        let dag1 = alg.build();
        let printed = imagen::dsl::to_dsl(&dag1);
        let dag2 = imagen::dsl::compile(alg.name(), &printed).unwrap();
        let c = Compiler::new(geom(), MemorySpec::new(backend(), 2));
        let d1 = c.compile_dag(&dag1).unwrap().plan.design;
        let d2 = c.compile_dag(&dag2).unwrap().plan.design;
        assert_eq!(d1.sram_kb(), d2.sram_kb(), "{}", alg.name());
        assert_eq!(d1.start_cycles, d2.start_cycles, "{}", alg.name());
    }
}
