//! Cross-crate front-end and RTL coverage: DSL error reporting, golden
//! semantics of the evaluation kernels, and RTL invariants under varied
//! memory configurations.

use imagen::algos::{sample_pattern, Algorithm, TestPattern};
use imagen::dsl::{compile, DslError};
use imagen::rtl::verify_structure;
use imagen::sim::{execute, Image};
use imagen::{Compiler, ImageGeometry, MemBackend, MemorySpec};

#[test]
fn dsl_error_positions_are_actionable() {
    let err = compile("t", "input a;\noutput b = im(x,y) c(x,y) end").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains('c'), "mentions the unknown stage: {msg}");

    let err = compile("t", "input a;\noutput b = im(x,y) a(x,y end").unwrap_err();
    assert!(matches!(err, DslError::Parse(_)));
    assert!(err.to_string().contains("2:"), "line number present: {err}");
}

#[test]
fn golden_canny_finds_edges() {
    // Semantic sanity of the flagship workload: a hard vertical edge must
    // produce strong responses near the edge and none in flat regions.
    let dag = Algorithm::CannyM.build();
    let w = 32;
    let h = 24;
    let input = Image::from_fn(w, h, |x, _| if x < w / 2 { 30 } else { 220 });
    let run = execute(&dag, &[input]).unwrap();
    let (_, edges) = run.outputs(&dag).next().unwrap();
    // Window normalization shifts output coordinates by a few pixels, so
    // locate the response column instead of assuming it.
    let col_sum = |x: u32| (4..h - 4).map(|y| edges.get(x, y)).sum::<i64>();
    let hot = (1..w - 1).max_by_key(|&x| col_sum(x)).unwrap();
    assert!(col_sum(hot) > 0, "some column responds to the step");
    assert!(
        (hot as i64 - w as i64 / 2).abs() <= 5,
        "response near the step: col {hot} vs step {}",
        w / 2
    );
    assert_eq!(col_sum(2.min(hot - 1)), 0, "flat region stays silent");
}

#[test]
fn golden_denoise_removes_impulses() {
    let dag = Algorithm::DenoiseM.build();
    let w = 32;
    let h = 24;
    // Flat field with one impulse.
    let input = Image::from_fn(w, h, |x, y| if (x, y) == (10, 10) { 255 } else { 100 });
    let run = execute(&dag, &[input]).unwrap();
    let (_, out) = run.outputs(&dag).next().unwrap();
    assert!(
        out.get(10, 10) < 255,
        "impulse must be attenuated, got {}",
        out.get(10, 10)
    );
    assert_eq!(out.get(3, 3), 100, "flat region untouched");
}

#[test]
fn golden_unsharp_increases_contrast() {
    let dag = Algorithm::UnsharpM.build();
    let w = 32;
    let h = 24;
    let input = Image::from_fn(w, h, |x, _| if x < w / 2 { 80 } else { 160 });
    let run = execute(&dag, std::slice::from_ref(&input)).unwrap();
    let (_, out) = run.outputs(&dag).next().unwrap();
    // Overshoot near the step: output range exceeds input range.
    let max_out = (0..w).map(|x| out.get(x, h / 2)).max().unwrap();
    let min_out = (0..w).map(|x| out.get(x, h / 2)).min().unwrap();
    assert!(max_out > 160 || min_out < 80, "sharpening must overshoot");
}

#[test]
fn rtl_respects_memory_spec() {
    let geom = ImageGeometry {
        width: 40,
        height: 30,
        pixel_bits: 16,
    };
    let dag = Algorithm::HarrisM.build();
    // Dual-port spec -> dual-port macros only; single-port -> 1p macros.
    // Both primitives are always *defined* (one occurrence each); only the
    // matching one may be *instantiated* (two or more occurrences).
    for (ports, macro_kind, absent) in [
        (2u32, "imagen_sram_2p #", "imagen_sram_1p #"),
        (1, "imagen_sram_1p #", "imagen_sram_2p #"),
    ] {
        let spec = MemorySpec::new(
            MemBackend::Asic {
                block_bits: 2 * geom.row_bits(),
            },
            ports,
        );
        let out = Compiler::new(geom, spec).compile_dag(&dag).unwrap();
        let v = &out.verilog;
        verify_structure(&out.netlist).unwrap();
        assert!(
            v.matches(macro_kind).count() >= 2,
            "P={ports} instantiates {macro_kind}"
        );
        assert_eq!(
            v.matches(absent).count(),
            1,
            "P={ports} must not instantiate {absent}"
        );
    }
}

#[test]
fn rtl_embeds_every_start_cycle() {
    let geom = ImageGeometry {
        width: 40,
        height: 30,
        pixel_bits: 16,
    };
    let spec = MemorySpec::new(
        MemBackend::Asic {
            block_bits: 2 * geom.row_bits(),
        },
        2,
    );
    let out = Compiler::new(geom, spec)
        .compile_dag(&Algorithm::CannyS.build())
        .unwrap();
    let v = &out.verilog;
    for &s in &out.plan.design.start_cycles {
        assert!(
            v.contains(&format!("64'd{s}")),
            "start cycle {s} missing from the control logic"
        );
    }
}

#[test]
fn simulator_rejects_geometry_mismatch() {
    let geom = ImageGeometry {
        width: 40,
        height: 30,
        pixel_bits: 16,
    };
    let spec = MemorySpec::new(
        MemBackend::Asic {
            block_bits: 2 * geom.row_bits(),
        },
        2,
    );
    let out = Compiler::new(geom, spec)
        .compile_dag(&Algorithm::UnsharpM.build())
        .unwrap();
    let wrong = Image::from_fn(8, 8, |x, y| sample_pattern(TestPattern::Gradient, 0, x, y));
    assert!(imagen::sim::simulate(&out.plan.dag, &out.plan.design, &[wrong]).is_err());
}
