//! The clock-gated differential suite: for every Tbl. 3 pipeline, the
//! netlist *after* `imagen_power::gate_clocks` must remain bit-exact
//! against the golden executor and the cycle-level simulator — gating
//! is proven semantics-preserving by execution, not by argument.
//!
//! The interpreter honors the gating plan (a gated-off read port
//! supplies no data), so a window that cut into a live consumer would
//! corrupt the streamed frames and fail here. On top of bit-exactness,
//! the suite checks that gating actually *bites*: the interpreter
//! reports a positive gated-off cycle count whenever the schedule skew
//! leaves idle read-port cycles, and the report is otherwise identical
//! to the ungated run's.
//!
//! Same two width regimes as `netlist_differential`: wide (64/64) on
//! 8-bit noise and hardware (16/32) on 4-bit inputs.
//! `IMAGEN_SMOKE=1` shrinks frames and case counts for CI.

use imagen::algos::Algorithm;
use imagen::power::gate_clocks;
use imagen::rtl::{build_netlist, interpret, BitWidths};
use imagen::sim::{execute, simulate, Image};
use imagen::{Compiler, ImageGeometry, MemBackend, MemorySpec};
use proptest::prelude::*;

fn smoke() -> bool {
    matches!(
        std::env::var("IMAGEN_SMOKE").ok().as_deref(),
        Some(v) if !v.is_empty() && v != "0" && v != "false" && v != "off"
    )
}

fn geom() -> ImageGeometry {
    if smoke() {
        ImageGeometry {
            width: 26,
            height: 22,
            pixel_bits: 16,
        }
    } else {
        ImageGeometry {
            width: 36,
            height: 26,
            pixel_bits: 16,
        }
    }
}

fn backend() -> MemBackend {
    MemBackend::Asic {
        block_bits: 2 * geom().row_bits(),
    }
}

/// Deterministic pseudo-random frame with `bits`-bit pixels.
fn noise_frame(seed: u64, bits: u32) -> Image {
    let g = geom();
    let mask = (1u64 << bits) - 1;
    Image::from_fn(g.width, g.height, |x, y| {
        let mut z = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(
            (u64::from(y) * u64::from(g.width) + u64::from(x)).wrapping_mul(0xBF58_476D_1CE4_E5B9),
        );
        z = (z ^ (z >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) & mask) as i64
    })
}

/// Compiles `alg`, gates its netlist and checks the gated execution
/// bit-exact against golden executor, cycle simulator and the ungated
/// interpretation.
fn gated_differential(alg: Algorithm, widths: &BitWidths, input: Image, label: &str) {
    let out = Compiler::new(geom(), MemorySpec::new(backend(), 2).with_coalescing())
        .compile_dag(&alg.build())
        .unwrap_or_else(|e| panic!("{} ({label}): {e}", alg.name()));
    let golden = execute(&out.plan.dag, std::slice::from_ref(&input)).unwrap();
    let sim = simulate(
        &out.plan.dag,
        &out.plan.design,
        std::slice::from_ref(&input),
    )
    .unwrap();
    assert!(
        sim.is_clean(),
        "{} ({label}): cycle model unclean",
        alg.name()
    );

    let net = build_netlist(&out.plan.dag, &out.plan.design, widths);
    let gated = gate_clocks(&net);
    assert!(gated.is_gated(), "{} ({label})", alg.name());
    imagen::rtl::verify_structure(&gated)
        .unwrap_or_else(|e| panic!("{} ({label}): gated netlist unsound: {e}", alg.name()));

    let plain = interpret(&net, std::slice::from_ref(&input))
        .unwrap_or_else(|e| panic!("{} ({label}): {e}", alg.name()));
    let run = interpret(&gated, std::slice::from_ref(&input))
        .unwrap_or_else(|e| panic!("{} ({label}): {e}", alg.name()));

    assert_eq!(
        run.output_images.len(),
        sim.output_images.len(),
        "{} ({label})",
        alg.name()
    );
    for (stage, img) in &run.output_images {
        let gold = golden.stage(imagen::ir::StageId::from_index(*stage));
        assert_eq!(
            img,
            gold,
            "{} ({label}): gated netlist vs golden executor on stage {stage}",
            alg.name()
        );
        let (_, simg) = sim
            .output_images
            .iter()
            .find(|(i, _)| i == stage)
            .expect("stream present in the cycle model");
        assert_eq!(
            img,
            simg,
            "{} ({label}): gated netlist vs cycle simulator on stage {stage}",
            alg.name()
        );
    }

    // Gating changes accounting, never behavior: the reports agree on
    // everything but the measured gated-off cycle count.
    assert_eq!(plain.cycles, run.cycles, "{} ({label})", alg.name());
    assert_eq!(plain.latency, run.latency, "{} ({label})", alg.name());
    assert_eq!(
        plain.sram_writes,
        run.sram_writes,
        "{} ({label})",
        alg.name()
    );
    assert_eq!(plain.gated_off_cycles, 0);
    assert!(
        run.gated_off_cycles > 0,
        "{} ({label}): schedule skew must leave gateable cycles",
        alg.name()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Wide widths, full-range 8-bit noise: every pipeline, bit-exact
    /// under gating.
    #[test]
    fn gated_wide_widths_bit_exact_on_full_range(seed in 0u64..1_000_000) {
        let algs = Algorithm::all();
        let algs: &[Algorithm] = if smoke() { &algs[..3] } else { &algs };
        for &alg in algs {
            gated_differential(alg, &BitWidths::wide(), noise_frame(seed, 8), "wide");
        }
    }

    /// Default hardware widths, 4-bit inputs: the truncating hardware
    /// agrees with the untruncated software model under gating too.
    #[test]
    fn gated_default_widths_bit_exact_in_range(seed in 0u64..1_000_000) {
        let algs = Algorithm::all();
        let algs: &[Algorithm] = if smoke() { &algs[..3] } else { &algs };
        for &alg in algs {
            gated_differential(alg, &BitWidths::default(), noise_frame(seed ^ 0xA5C3, 4), "default");
        }
    }
}

/// One deterministic non-proptest pass over all seven pipelines in both
/// regimes, so a plain `cargo test` exercises every algorithm even under
/// `IMAGEN_SMOKE=1`.
#[test]
fn all_pipelines_once_both_regimes_gated() {
    for alg in Algorithm::all() {
        gated_differential(alg, &BitWidths::wide(), noise_frame(4, 8), "wide-once");
        gated_differential(
            alg,
            &BitWidths::default(),
            noise_frame(5, 4),
            "default-once",
        );
    }
}
