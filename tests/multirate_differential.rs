//! Four-way differential verification for the multirate pyramid
//! examples: for each pyramid pipeline in `examples/`, the golden
//! executor (`imagen::sim::execute`), the cycle-level simulator
//! (`imagen::sim::simulate`), the legacy netlist interpreter
//! (`imagen::rtl::interpret_legacy`) and the compiled evaluation
//! program (`imagen::rtl::interpret`) must all agree bit-exactly on
//! every output stream — with and without clock gating, at both width
//! regimes:
//!
//! * **wide** (64/64): datapath arithmetic coincides with the software
//!   model's `i64` semantics, exact on full-range 8-bit inputs;
//! * **default** (16/32): the real truncating hardware; 4-bit inputs
//!   keep every kernel intermediate inside the 16-bit pixel datapath.
//!
//! Frame extents are divisible by every cumulative scale in the
//! pyramids (2×2), as the planner requires. `IMAGEN_SMOKE=1` shrinks
//! the frame for CI.

use imagen::power::gate_clocks;
use imagen::rtl::{build_netlist, interpret, interpret_legacy, BitWidths};
use imagen::sim::{execute, simulate, Image};
use imagen::{Compiler, ImageGeometry, MemBackend, MemorySpec};

fn smoke() -> bool {
    matches!(
        std::env::var("IMAGEN_SMOKE").ok().as_deref(),
        Some(v) if !v.is_empty() && v != "0" && v != "false" && v != "off"
    )
}

fn geom() -> ImageGeometry {
    // Both extents divisible by 4: the deepest cumulative scale is 2 per
    // axis and the widths below stay well clear of the 3×3 stencils.
    if smoke() {
        ImageGeometry {
            width: 24,
            height: 16,
            pixel_bits: 16,
        }
    } else {
        ImageGeometry {
            width: 40,
            height: 24,
            pixel_bits: 16,
        }
    }
}

fn backend() -> MemBackend {
    MemBackend::Asic {
        block_bits: 2 * geom().row_bits(),
    }
}

/// Deterministic pseudo-random frame with `bits`-bit pixels.
fn noise_frame(seed: u64, bits: u32) -> Image {
    let g = geom();
    let mask = (1u64 << bits) - 1;
    Image::from_fn(g.width, g.height, |x, y| {
        let mut z = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(
            (u64::from(y) * u64::from(g.width) + u64::from(x)).wrapping_mul(0xBF58_476D_1CE4_E5B9),
        );
        z = (z ^ (z >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) & mask) as i64
    })
}

fn pyramid_dag(file: &str) -> imagen::ir::Dag {
    let path = format!("{}/examples/{file}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap();
    let name = file.trim_end_matches(".imagen");
    imagen::dsl::compile(name, &src).unwrap()
}

/// Compiles one pyramid, runs all four engines on `input`, and pins
/// every output stream bit-exact across the quartet.
fn four_way(file: &str, widths: &BitWidths, input: Image, label: &str) {
    let dag = pyramid_dag(file);
    let out = Compiler::new(geom(), MemorySpec::new(backend(), 2))
        .compile_dag(&dag)
        .unwrap_or_else(|e| panic!("{file} ({label}): {e}"));
    assert!(
        out.plan.dag.is_multirate(),
        "{file}: expected a multirate pipeline"
    );

    let golden = execute(&out.plan.dag, std::slice::from_ref(&input)).unwrap();
    let sim = simulate(
        &out.plan.dag,
        &out.plan.design,
        std::slice::from_ref(&input),
    )
    .unwrap();
    assert!(sim.is_clean(), "{file} ({label}): cycle model unclean");

    let base = build_netlist(&out.plan.dag, &out.plan.design, widths);
    let gated = gate_clocks(&base);
    for (net, gating) in [(&base, "ungated"), (&gated, "gated")] {
        let fast = interpret(net, std::slice::from_ref(&input))
            .unwrap_or_else(|e| panic!("{file} ({label} {gating}): {e}"));
        let slow = interpret_legacy(net, std::slice::from_ref(&input))
            .unwrap_or_else(|e| panic!("{file} ({label} {gating}): {e}"));

        assert_eq!(
            fast.output_images.len(),
            sim.output_images.len(),
            "{file} ({label} {gating}): stream count"
        );
        for (stage, img) in &fast.output_images {
            let gold = golden.stage(imagen::ir::StageId::from_index(*stage));
            assert_eq!(
                img, gold,
                "{file} ({label} {gating}): program vs golden executor on stage {stage}"
            );
            let (_, simg) = sim
                .output_images
                .iter()
                .find(|(i, _)| i == stage)
                .expect("stream present in the cycle model");
            assert_eq!(
                img, simg,
                "{file} ({label} {gating}): program vs cycle simulator on stage {stage}"
            );
            let (_, limg) = slow
                .output_images
                .iter()
                .find(|(i, _)| i == stage)
                .expect("stream present in the legacy interpreter");
            assert_eq!(
                img, limg,
                "{file} ({label} {gating}): program vs legacy interpreter on stage {stage}"
            );
        }
        // The engines' bookkeeping must agree too, not just the pixels.
        assert_eq!(
            (fast.cycles, fast.latency, fast.sram_reads, fast.sram_writes),
            (slow.cycles, slow.latency, slow.sram_reads, slow.sram_writes),
            "{file} ({label} {gating}): report totals"
        );
    }
}

const PYRAMIDS: [&str; 2] = ["gaussian_pyramid.imagen", "laplacian_pyramid.imagen"];

/// Rate-aware line-buffer sizing is *minimal*: shrinking any multi-row
/// buffer in a pyramid plan by one row makes the cycle-level simulator
/// — which derives produce/overwrite times from first principles, not
/// from the solver's inequalities — report an eviction (R2) violation.
/// Single-row buffers (e.g. the upsample reader's producer buffer) are
/// already at the storage floor and cannot shrink.
#[test]
fn pyramid_buffer_sizing_is_minimal() {
    let input = noise_frame(3, 4);
    for file in PYRAMIDS {
        let dag = pyramid_dag(file);
        let out = Compiler::new(geom(), MemorySpec::new(backend(), 2))
            .compile_dag(&dag)
            .unwrap();

        // Baseline: the planned design is residency- and port-clean.
        let clean = simulate(
            &out.plan.dag,
            &out.plan.design,
            std::slice::from_ref(&input),
        )
        .unwrap();
        assert!(clean.is_clean(), "{file}: planned design must be clean");

        let mut shrunk_any = false;
        for i in 0..out.plan.design.buffers.len() {
            if out.plan.design.buffers[i].logical_rows < 2 {
                continue;
            }
            shrunk_any = true;
            let mut design = out.plan.design.clone();
            design.buffers[i].logical_rows -= 1;
            design.buffers[i].phys_rows = design.buffers[i].logical_rows;
            let r = simulate(&out.plan.dag, &design, std::slice::from_ref(&input)).unwrap();
            assert!(
                r.residency_violations.iter().any(|v| !v.not_yet_produced),
                "{file}: buffer {i} shrunk by one row should evict live data, got {:?}",
                r.residency_violations
            );
        }
        assert!(
            shrunk_any,
            "{file}: expected at least one multi-row buffer to exercise"
        );
    }
}

/// Wide widths, full-range 8-bit noise: both pyramids, bit-exact,
/// gated and ungated.
#[test]
fn pyramids_wide_widths_bit_exact() {
    for (i, file) in PYRAMIDS.iter().enumerate() {
        four_way(file, &BitWidths::wide(), noise_frame(11 + i as u64, 8), "wide");
    }
}

/// Default hardware widths, 4-bit inputs: both pyramids, bit-exact,
/// gated and ungated.
#[test]
fn pyramids_default_widths_bit_exact() {
    for (i, file) in PYRAMIDS.iter().enumerate() {
        four_way(
            file,
            &BitWidths::default(),
            noise_frame(0xD1F7 + i as u64, 4),
            "default",
        );
    }
}
