//! The differential verification loop: for every Tbl. 3 pipeline, the
//! netlist interpreter — executing the very structure the Verilog is
//! printed from — must be bit-exact against both the golden executor
//! (`imagen::sim::execute`) and the cycle-level simulator
//! (`imagen::sim::simulate`) on random frames.
//!
//! Two width regimes are exercised:
//!
//! * **wide** (`BitWidths::wide()`, 64/64): datapath arithmetic coincides
//!   with the software model's `i64` semantics, so equality is exact on
//!   full-range 8-bit inputs for every pipeline;
//! * **default** (16/32): the real truncating hardware; inputs are kept
//!   to 4 bits so no kernel intermediate leaves the 16-bit pixel
//!   datapath, making the hardware-width run comparable against the
//!   untruncated software model.
//!
//! `IMAGEN_SMOKE=1` shrinks frames and case counts for CI.

use imagen::algos::Algorithm;
use imagen::rtl::{build_netlist, interpret, BitWidths};
use imagen::sim::{execute, simulate, Image};
use imagen::{Compiler, ImageGeometry, MemBackend, MemorySpec};
use proptest::prelude::*;

fn smoke() -> bool {
    matches!(
        std::env::var("IMAGEN_SMOKE").ok().as_deref(),
        Some(v) if !v.is_empty() && v != "0" && v != "false" && v != "off"
    )
}

fn geom() -> ImageGeometry {
    // Height clears the tallest stencil (Xcorr-m's 18 rows) plus slack.
    if smoke() {
        ImageGeometry {
            width: 26,
            height: 22,
            pixel_bits: 16,
        }
    } else {
        ImageGeometry {
            width: 36,
            height: 26,
            pixel_bits: 16,
        }
    }
}

fn backend() -> MemBackend {
    MemBackend::Asic {
        block_bits: 2 * geom().row_bits(),
    }
}

/// Deterministic pseudo-random frame with `bits`-bit pixels.
fn noise_frame(seed: u64, bits: u32) -> Image {
    let g = geom();
    let mask = (1u64 << bits) - 1;
    Image::from_fn(g.width, g.height, |x, y| {
        let mut z = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(
            (u64::from(y) * u64::from(g.width) + u64::from(x)).wrapping_mul(0xBF58_476D_1CE4_E5B9),
        );
        z = (z ^ (z >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) & mask) as i64
    })
}

/// Compiles `alg`, interprets its netlist at `widths` on `input`, and
/// checks the streamed frames bit-exact against golden and cycle model.
fn differential(alg: Algorithm, widths: &BitWidths, input: Image, label: &str) {
    let out = Compiler::new(geom(), MemorySpec::new(backend(), 2).with_coalescing())
        .compile_dag(&alg.build())
        .unwrap_or_else(|e| panic!("{} ({label}): {e}", alg.name()));
    let golden = execute(&out.plan.dag, std::slice::from_ref(&input)).unwrap();
    let sim = simulate(
        &out.plan.dag,
        &out.plan.design,
        std::slice::from_ref(&input),
    )
    .unwrap();
    assert!(
        sim.is_clean(),
        "{} ({label}): cycle model unclean",
        alg.name()
    );

    let net = build_netlist(&out.plan.dag, &out.plan.design, widths);
    let run = interpret(&net, std::slice::from_ref(&input))
        .unwrap_or_else(|e| panic!("{} ({label}): {e}", alg.name()));

    assert_eq!(
        run.output_images.len(),
        sim.output_images.len(),
        "{} ({label})",
        alg.name()
    );
    for (stage, img) in &run.output_images {
        let gold = golden.stage(imagen::ir::StageId::from_index(*stage));
        assert_eq!(
            img,
            gold,
            "{} ({label}): netlist vs golden executor on stage {stage}",
            alg.name()
        );
        let (_, simg) = sim
            .output_images
            .iter()
            .find(|(i, _)| i == stage)
            .expect("stream present in the cycle model");
        assert_eq!(
            img,
            simg,
            "{} ({label}): netlist vs cycle simulator on stage {stage}",
            alg.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Wide widths, full-range 8-bit noise: every pipeline, bit-exact.
    #[test]
    fn wide_widths_bit_exact_on_full_range(seed in 0u64..1_000_000) {
        let algs = Algorithm::all();
        let algs: &[Algorithm] = if smoke() { &algs[..3] } else { &algs };
        for &alg in algs {
            differential(alg, &BitWidths::wide(), noise_frame(seed, 8), "wide");
        }
    }

    /// Default hardware widths, 4-bit inputs: no kernel intermediate
    /// escapes the 16-bit pixel datapath, so the truncating hardware
    /// agrees with the untruncated software model.
    #[test]
    fn default_widths_bit_exact_in_range(seed in 0u64..1_000_000) {
        let algs = Algorithm::all();
        let algs: &[Algorithm] = if smoke() { &algs[..3] } else { &algs };
        for &alg in algs {
            differential(alg, &BitWidths::default(), noise_frame(seed ^ 0xD1F7, 4), "default");
        }
    }
}

/// One deterministic non-proptest pass over all seven pipelines in both
/// regimes, so a plain `cargo test` exercises every algorithm even under
/// `IMAGEN_SMOKE=1` (the proptest cases subset for speed).
#[test]
fn all_pipelines_once_both_regimes() {
    for alg in Algorithm::all() {
        differential(alg, &BitWidths::wide(), noise_frame(1, 8), "wide-once");
        differential(
            alg,
            &BitWidths::default(),
            noise_frame(2, 4),
            "default-once",
        );
    }
}
