//! The paper's qualitative claims as executable invariants: who wins, in
//! which direction, on every comparison in Sec. 8 — at test-sized frames.

use imagen::algos::Algorithm;
use imagen::baselines::{generate_darkroom, generate_fixynn, generate_soda};
use imagen::{Compiler, Design, ImageGeometry, MemBackend, MemorySpec};

fn geom() -> ImageGeometry {
    ImageGeometry {
        width: 40,
        height: 30,
        pixel_bits: 16,
    }
}

fn backend() -> MemBackend {
    MemBackend::Asic {
        block_bits: 2 * 40 * 16,
    }
}

fn ours(alg: Algorithm) -> Design {
    Compiler::new(geom(), MemorySpec::new(backend(), 2))
        .compile_dag(&alg.build())
        .unwrap()
        .plan
        .design
}

fn ours_lc(alg: Algorithm) -> Design {
    imagen::dse::judicious_lc(&alg.build(), &geom(), backend())
        .unwrap()
        .1
        .plan
        .design
}

#[test]
fn table3_roster() {
    for alg in Algorithm::all() {
        let dag = alg.build();
        assert_eq!(dag.num_stages(), alg.expected_stages(), "{}", alg.name());
        assert_eq!(
            dag.multi_consumer_stages().len(),
            alg.expected_multi_consumer(),
            "{}",
            alg.name()
        );
    }
}

#[test]
fn fixynn_never_beats_ours_on_sram() {
    // Sec. 8.3: "FixyNN always has a higher SRAM requirement than Ours,
    // even on single-consumer algorithms."
    for alg in Algorithm::all() {
        let fx = generate_fixynn(&alg.build(), &geom(), backend()).unwrap();
        assert!(
            fx.design.sram_kb() >= ours(alg).sram_kb(),
            "{}: FixyNN {} vs Ours {}",
            alg.name(),
            fx.design.sram_kb(),
            ours(alg).sram_kb()
        );
    }
}

#[test]
fn darkroom_matches_ours_on_single_consumer_only() {
    // Linearization is free on -s algorithms and costs memory on -m ones.
    for alg in Algorithm::all() {
        let dk = generate_darkroom(&alg.build(), &geom(), backend()).unwrap();
        let us = ours(alg);
        if alg.expected_multi_consumer() == 0 {
            assert_eq!(
                dk.design.sram_kb(),
                us.sram_kb(),
                "{}: Darkroom == Ours on single-consumer",
                alg.name()
            );
        } else {
            assert!(
                dk.design.sram_kb() >= us.sram_kb(),
                "{}: Darkroom {} must be >= Ours {}",
                alg.name(),
                dk.design.sram_kb(),
                us.sram_kb()
            );
        }
    }
}

#[test]
fn soda_sram_beats_ours_but_lc_closes_the_gap() {
    // Sec. 8.3: SODA's DFF heads undercut Ours on SRAM; Ours+LC wins the
    // average back.
    let mut soda_total = 0.0;
    let mut ours_total = 0.0;
    let mut lc_total = 0.0;
    for alg in Algorithm::all() {
        let soda = generate_soda(&alg.build(), &geom(), backend()).unwrap();
        soda_total += soda.design.sram_kb();
        ours_total += ours(alg).sram_kb();
        lc_total += ours_lc(alg).sram_kb();
    }
    assert!(
        ours_total > soda_total,
        "Ours ({ours_total}) uses more SRAM than SODA ({soda_total})"
    );
    assert!(
        lc_total < ours_total,
        "LC ({lc_total}) reduces SRAM vs Ours ({ours_total})"
    );
}

#[test]
fn ours_beats_baselines_on_average_power() {
    // Fig. 8b directions: Ours below FixyNN, Darkroom and SODA on average
    // memory power.
    let (mut fx, mut dk, mut soda, mut us) = (0.0, 0.0, 0.0, 0.0);
    for alg in Algorithm::all() {
        fx += generate_fixynn(&alg.build(), &geom(), backend())
            .unwrap()
            .design
            .memory_power_mw();
        dk += generate_darkroom(&alg.build(), &geom(), backend())
            .unwrap()
            .design
            .memory_power_mw();
        soda += generate_soda(&alg.build(), &geom(), backend())
            .unwrap()
            .design
            .memory_power_mw();
        us += ours(alg).memory_power_mw();
    }
    assert!(us < fx, "Ours {us} vs FixyNN {fx}");
    assert!(us < dk, "Ours {us} vs Darkroom {dk}");
    assert!(us < soda, "Ours {us} vs SODA {soda}");
}

#[test]
fn xcorr_linearization_blowup() {
    // Sec. 8.3: linearizing Xcorr-m replicates an 18-row window, adding a
    // tall relay buffer — the paper's standout saving for Ours.
    let alg = Algorithm::XcorrM;
    let dk = generate_darkroom(&alg.build(), &geom(), backend()).unwrap();
    let us = ours(alg);
    assert!(
        dk.design.sram_kb() >= 1.5 * us.sram_kb(),
        "Darkroom {} should dwarf Ours {} on Xcorr-m",
        dk.design.sram_kb(),
        us.sram_kb()
    );
}

#[test]
fn latency_cost_is_negligible() {
    // Sec. 8.1: Ours adds ~0.01% latency over the ASAP (SODA) schedule.
    for alg in Algorithm::all() {
        let us = Compiler::new(geom(), MemorySpec::new(backend(), 2))
            .compile_dag(&alg.build())
            .unwrap()
            .plan;
        let soda = generate_soda(&alg.build(), &geom(), backend()).unwrap();
        let g = geom();
        let l_ours = us.schedule.latency(&us.dag, g.width, g.height) as f64;
        let l_soda = soda.schedule.latency(&soda.dag, g.width, g.height) as f64;
        assert!(
            l_ours <= l_soda * 1.25,
            "{}: latency {} vs ASAP {} — more than 25% overhead at toy sizes",
            alg.name(),
            l_ours,
            l_soda
        );
    }
}

#[test]
fn multi_consumer_algorithms_gain_more() {
    // The headline motivation: Ours' advantage over Darkroom is larger on
    // -m algorithms than on -s ones.
    let gain = |alg: Algorithm| {
        let dk = generate_darkroom(&alg.build(), &geom(), backend())
            .unwrap()
            .design
            .sram_kb();
        let us = ours(alg).sram_kb();
        (dk - us) / dk
    };
    let s_avg = (gain(Algorithm::CannyS) + gain(Algorithm::HarrisS)) / 2.0;
    let m_avg = (gain(Algorithm::CannyM)
        + gain(Algorithm::HarrisM)
        + gain(Algorithm::UnsharpM)
        + gain(Algorithm::XcorrM)
        + gain(Algorithm::DenoiseM))
        / 5.0;
    assert!(
        m_avg > s_avg,
        "multi-consumer gain {m_avg} must exceed single-consumer gain {s_avg}"
    );
}

#[test]
fn single_port_memories_still_schedulable() {
    // Sec. 3.2: SODA cannot target single-port memories at all; our
    // framework generates valid single-port designs for every workload.
    for alg in Algorithm::all() {
        let fx = generate_fixynn(&alg.build(), &geom(), backend()).unwrap();
        assert!(fx
            .design
            .buffers
            .iter()
            .flat_map(|b| &b.blocks)
            .all(|b| b.ports == 1));
    }
}
