//! Property-based and brute-force cross-checks of the scheduler: the ILP
//! optimum really is optimal, pruning really is lossless, and every
//! schedule the optimizer emits is verified by independent machinery.

use imagen::algos::synthetic_pipeline;
use imagen::schedule::{
    formulate, plan_design, schedule_satisfies, size_buffers, solve_schedule, BufferParams,
    FormulationOptions, ScheduleOptions, SizeObjective,
};
use imagen::sim::{simulate, Image};
use imagen::{DesignStyle, ImageGeometry, MemBackend, MemorySpec};
use imagen_ir::{Dag, Expr, StageId};
use proptest::prelude::*;

struct Uniform(u32);
impl BufferParams for Uniform {
    fn ports(&self, _: StageId) -> u32 {
        self.0
    }
    fn coalesce(&self, _: StageId) -> u32 {
        1
    }
}

fn box_k(slot: usize, h: i32) -> Expr {
    let half = h / 2;
    Expr::sum((-half..=half).flat_map(move |dy| (-1..=1).map(move |dx| Expr::tap(slot, dx, dy))))
}

/// Exhaustive schedule search for tiny pipelines: enumerate start cycles
/// up to a bound and minimize total buffer rows.
fn brute_force_rows(dag: &Dag, width: u32, ports: u32, bound: i64) -> Option<u64> {
    let set = formulate(dag, width, &Uniform(ports), FormulationOptions::default());
    let n = dag.num_stages();
    let mut starts = vec![0i64; n];
    let mut best: Option<u64> = None;
    #[allow(clippy::too_many_arguments)]
    fn rec(
        i: usize,
        n: usize,
        bound: i64,
        starts: &mut Vec<i64>,
        set: &imagen::schedule::ConstraintSet,
        dag: &Dag,
        width: u32,
        best: &mut Option<u64>,
    ) {
        if i == n {
            if schedule_satisfies(set, starts) {
                let (_, total) = size_buffers(dag, width, starts);
                if best.is_none_or(|b| total < b) {
                    *best = Some(total);
                }
            }
            return;
        }
        for s in 0..=bound {
            starts[i] = s;
            rec(i + 1, n, bound, starts, set, dag, width, best);
        }
    }
    rec(0, n, bound, &mut starts, &set, dag, width, &mut best);
    best
}

#[test]
fn ilp_matches_brute_force_on_small_pipelines() {
    // 3-stage diamond at tiny width: exhaustive search is feasible.
    let w = 4u32;
    let mut dag = Dag::new("bf");
    let k0 = dag.add_input("K0");
    let k1 = dag.add_stage("K1", &[k0], box_k(0, 3)).unwrap();
    let k2 = dag
        .add_stage(
            "K2",
            &[k0, k1],
            Expr::bin(
                imagen_ir::BinOp::Add,
                Expr::tap(0, 0, 0),
                Expr::tap(1, 0, 0),
            ),
        )
        .unwrap();
    dag.mark_output(k2);

    for ports in [1u32, 2] {
        let set = formulate(&dag, w, &Uniform(ports), FormulationOptions::default());
        let sched = solve_schedule(&dag, w, &set, ScheduleOptions::default()).unwrap();
        let brute = brute_force_rows(&dag, w, ports, 40).expect("feasible");
        assert_eq!(
            sched.total_rows, brute,
            "P={ports}: ILP {} vs brute force {}",
            sched.total_rows, brute
        );
    }
}

#[test]
fn exact_rows_objective_matches_brute_force() {
    let w = 4u32;
    let mut dag = Dag::new("bf2");
    let k0 = dag.add_input("K0");
    let k1 = dag.add_stage("K1", &[k0], box_k(0, 3)).unwrap();
    let k2 = dag.add_stage("K2", &[k1], box_k(0, 3)).unwrap();
    dag.mark_output(k2);
    let set = formulate(&dag, w, &Uniform(2), FormulationOptions::default());
    let sched = solve_schedule(
        &dag,
        w,
        &set,
        ScheduleOptions {
            objective: SizeObjective::TotalRows,
            ..Default::default()
        },
    )
    .unwrap();
    let brute = brute_force_rows(&dag, w, 2, 30).unwrap();
    assert_eq!(sched.total_rows, brute);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random synthetic pipelines: pruning never changes the optimum, and
    /// the planned design simulates clean.
    #[test]
    fn random_pipelines_schedule_and_simulate(seed in 0u64..500, stages in 4usize..9) {
        let dag = synthetic_pipeline(stages, seed);
        let geom = ImageGeometry { width: 24, height: 20, pixel_bits: 16 };
        let spec = MemorySpec::new(MemBackend::Asic { block_bits: 2 * 24 * 16 }, 2);

        let pruned = plan_design(&dag, &geom, &spec, ScheduleOptions::default(), DesignStyle::Ours)
            .expect("schedulable");
        let unpruned = plan_design(
            &dag,
            &geom,
            &spec,
            ScheduleOptions { pruning: false, ..Default::default() },
            DesignStyle::Ours,
        )
        .expect("schedulable");
        prop_assert_eq!(
            pruned.schedule.total_rows,
            unpruned.schedule.total_rows,
            "pruning must be lossless"
        );

        let input = Image::from_fn(geom.width, geom.height, |x, y| {
            ((x * 31 + y * 17) % 251) as i64
        });
        let report = simulate(&pruned.dag, &pruned.design, &[input]).unwrap();
        prop_assert!(
            report.is_clean(),
            "ports={:?} residency={:?} functional={}",
            report.port_violations,
            report.residency_violations,
            report.outputs_match_golden
        );
    }

    /// Single-port designs always need at least as many buffered rows as
    /// dual-port ones, and both simulate clean.
    #[test]
    fn port_count_monotonicity(seed in 0u64..200, stages in 4usize..8) {
        let dag = synthetic_pipeline(stages, seed);
        let geom = ImageGeometry { width: 24, height: 20, pixel_bits: 16 };
        let mk = |ports| {
            plan_design(
                &dag,
                &geom,
                &MemorySpec::new(MemBackend::Asic { block_bits: 2 * 24 * 16 }, ports),
                ScheduleOptions::default(),
                DesignStyle::Ours,
            )
            .expect("schedulable")
        };
        let single = mk(1);
        let dual = mk(2);
        prop_assert!(single.schedule.total_rows >= dual.schedule.total_rows);

        let input = Image::from_fn(geom.width, geom.height, |x, y| {
            ((x * 13 + y * 7) % 251) as i64
        });
        let r = simulate(&single.dag, &single.design, &[input]).unwrap();
        prop_assert!(r.is_clean());
    }
}
