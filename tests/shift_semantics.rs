//! Pins the reconciled out-of-range shift semantics across every
//! executable layer.
//!
//! History: `Expr::eval` (golden executor, cycle simulator) and the
//! netlist interpreter used to *clamp* shift amounts to `0..=62`, while
//! the emitted Verilog's `<<<`/`>>>` treat the amount as unsigned — a
//! negative or `>= 64` amount shifts everything out (`0` for `<<<`, the
//! sign fill for `>>>`). Constant kernel shifts never hit the divergent
//! region, but a *data-dependent* amount (`a(x,y) >> b(x,y)`) silently
//! meant different hardware than the model claimed.
//!
//! The resolution adopts the hardware semantics everywhere. This test
//! compiles a pipeline whose shift amounts are pixel data sweeping far
//! out of range in both directions and requires the golden executor,
//! the cycle-level simulator and the netlist interpreter (the executable
//! form of the emitted Verilog) to agree bit for bit at wide widths —
//! where datapath arithmetic coincides with the `i64` model and any
//! clamp-vs-Verilog difference would show up verbatim.

use imagen::ir::BinOp;
use imagen::rtl::{build_netlist, interpret, BitWidths};
use imagen::sim::{execute, simulate, Image};
use imagen::{Compiler, ImageGeometry, MemBackend, MemorySpec};

const SRC: &str = "
    input a;
    // Both shift directions with data-dependent amounts drawn from the
    // neighboring pixels.
    output s = im(x,y) (a(x-1,y) << a(x,y)) + (a(x,y-1) >> a(x,y)) end
";

fn geom() -> ImageGeometry {
    ImageGeometry {
        width: 24,
        height: 18,
        pixel_bits: 16,
    }
}

/// Pixel stream containing in-range, boundary, and far out-of-range shift
/// amounts, positive and negative operand values.
fn amounts_frame() -> Image {
    let g = geom();
    let probes: [i64; 12] = [0, 1, 5, 62, 63, 64, 65, 100, -1, -2, -63, -4096];
    Image::from_fn(g.width, g.height, |x, y| {
        let i = (y * g.width + x) as usize;
        // Interleave probe amounts with signed values to shift.
        if i.is_multiple_of(2) {
            probes[(i / 2) % probes.len()]
        } else {
            let v = (i as i64).wrapping_mul(2654435761) % 1000;
            if i.is_multiple_of(3) {
                -v
            } else {
                v
            }
        }
    })
}

#[test]
fn data_dependent_shifts_agree_everywhere() {
    let dag = imagen::dsl::compile("shifts", SRC).unwrap();
    // The kernel really contains both shift operators.
    let kernel = dag
        .stages()
        .find_map(|(_, s)| s.kernel())
        .expect("compute stage")
        .clone();
    let mut ops = Vec::new();
    fn walk(e: &imagen::ir::Expr, ops: &mut Vec<BinOp>) {
        if let imagen::ir::Expr::Bin(op, a, b) = e {
            ops.push(*op);
            walk(a, ops);
            walk(b, ops);
        }
    }
    walk(&kernel, &mut ops);
    assert!(ops.contains(&BinOp::Shl) && ops.contains(&BinOp::Shr));

    let spec = MemorySpec::new(
        MemBackend::Asic {
            block_bits: 2 * geom().row_bits(),
        },
        2,
    );
    let out = Compiler::new(geom(), spec).compile_dag(&dag).unwrap();
    let input = amounts_frame();

    let golden = execute(&out.plan.dag, std::slice::from_ref(&input)).unwrap();
    let sim = simulate(
        &out.plan.dag,
        &out.plan.design,
        std::slice::from_ref(&input),
    )
    .unwrap();
    assert!(sim.is_clean());

    let net = build_netlist(&out.plan.dag, &out.plan.design, &BitWidths::wide());
    let run = interpret(&net, std::slice::from_ref(&input)).unwrap();

    assert!(!run.output_images.is_empty());
    for (stage, img) in &run.output_images {
        let gold = golden.stage(imagen::ir::StageId::from_index(*stage));
        assert_eq!(img, gold, "netlist vs golden executor on stage {stage}");
        let (_, simg) = sim
            .output_images
            .iter()
            .find(|(i, _)| i == stage)
            .expect("stream present in the cycle model");
        assert_eq!(img, simg, "netlist vs cycle simulator on stage {stage}");
    }

    // And the divergent region was actually exercised: some amount in the
    // frame is out of range on both sides.
    let vals: Vec<i64> = input.data().to_vec();
    assert!(vals.iter().any(|&v| v > 63));
    assert!(vals.iter().any(|&v| v < 0));
}

/// The emitted text renders shifts as plain Verilog shifts — the very
/// semantics the model now implements. Pin the rendering so a future
/// emitter change cannot silently reopen the gap.
#[test]
fn emitted_text_uses_plain_verilog_shifts() {
    let dag = imagen::dsl::compile("shifts", SRC).unwrap();
    let spec = MemorySpec::new(
        MemBackend::Asic {
            block_bits: 2 * geom().row_bits(),
        },
        2,
    );
    let out = Compiler::new(geom(), spec).compile_dag(&dag).unwrap();
    let shift_lines: Vec<&str> = out
        .verilog
        .lines()
        .filter(|l| l.contains("<<<") || l.contains(">>>"))
        .collect();
    assert!(
        shift_lines.iter().any(|l| l.contains("<<<")),
        "arithmetic shift left rendered"
    );
    assert!(
        shift_lines.iter().any(|l| l.contains(">>>")),
        "arithmetic shift right rendered"
    );
    for line in shift_lines {
        assert!(
            !line.contains('?'),
            "shift rendered with a guarding ternary — the emitted semantics \
             changed; update the model and this pin together: {line}"
        );
    }
}
