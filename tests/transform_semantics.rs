//! Semantic preservation of the DAG transforms: linearization (Darkroom)
//! and line coalescing must not change what the pipeline computes — only
//! how it is buffered. Verified by golden execution and by full
//! cycle-level simulation.

use imagen::algos::{sample_pattern, Algorithm, TestPattern};
use imagen::sim::{execute, simulate, Image};
use imagen::{Compiler, DesignStyle, ImageGeometry, MemBackend, MemorySpec};
use imagen_ir::{apply_line_coalescing, linearize, CoalesceFactor};

fn geom() -> ImageGeometry {
    ImageGeometry {
        width: 40,
        height: 30,
        pixel_bits: 16,
    }
}

fn frame(seed: u64) -> Image {
    Image::from_fn(geom().width, geom().height, |x, y| {
        sample_pattern(TestPattern::Noise, seed, x, y)
    })
}

/// Pixels differing in the interior (a border of `margin` excluded),
/// after applying the transform's recorded raster shift:
/// `new[y][x]` is compared against `orig[y - ay][x - ax]`.
///
/// Relays compose clamp-to-edge sampling (`clamp(clamp(i)+o)` instead of
/// `clamp(i+o)`), so linearization can deviate within a few pixels of the
/// frame border — exactly the boundary regime the paper scopes out
/// (Sec. 5, footnote 2). Interior semantics must be bit-identical.
fn diff_interior_shifted(orig: &Image, new: &Image, shift: (i32, i32), margin: u32) -> usize {
    let (ax, ay) = shift;
    let m = margin as i64 + ax.unsigned_abs().max(ay.unsigned_abs()) as i64;
    let mut diffs = 0;
    for y in m..new.height() as i64 - m {
        for x in m..new.width() as i64 - m {
            let o = orig.get_clamped(x - ax as i64, y - ay as i64);
            if o != new.get(x as u32, y as u32) {
                diffs += 1;
            }
        }
    }
    diffs
}

#[test]
fn linearization_preserves_output_semantics() {
    // The relay stages forward data with adjusted taps; the *output*
    // stage's interior must be bit-identical to the original pipeline's
    // up to the recorded raster shift.
    for alg in Algorithm::all() {
        let dag = alg.build();
        let lin = linearize(&dag).unwrap();
        let input = frame(11);
        let orig = execute(&dag, std::slice::from_ref(&input)).unwrap();
        let rewritten = execute(&lin.dag, &[input]).unwrap();

        // Cumulative window reach bounds how far border effects travel.
        let margin = (dag.stats().max_stencil_height * dag.num_stages() as u32 / 2).min(10);
        let orig_out: Vec<_> = orig.outputs(&dag).collect();
        for (out_id, out_img) in rewritten.outputs(&lin.dag) {
            // Match by stage name (ids shift when relays are inserted).
            let name = lin.dag.stage(out_id).name();
            let (oidx, _) = dag
                .stages()
                .find(|(_, s)| s.name() == name)
                .unwrap_or_else(|| panic!("{}: output {name} missing", alg.name()));
            let reference = orig_out
                .iter()
                .find(|(id, _)| *id == oidx)
                .map(|(_, img)| *img)
                .expect("output image");
            assert_eq!(
                diff_interior_shifted(reference, out_img, lin.shifts[oidx.index()], margin),
                0,
                "{}: linearization changed interior of output `{name}` (shift {:?})",
                alg.name(),
                lin.shifts[oidx.index()]
            );
        }
    }
}

#[test]
fn coalescing_preserves_output_semantics() {
    // Coalescing only re-partitions read ports; kernels are untouched, so
    // golden outputs must be identical.
    for alg in Algorithm::all() {
        let dag = alg.build();
        let mut coalesced = dag.clone();
        apply_line_coalescing(&mut coalesced, |_| CoalesceFactor::new(2));
        let input = frame(13);
        let a = execute(&dag, std::slice::from_ref(&input)).unwrap();
        let b = execute(&coalesced, &[input]).unwrap();
        for ((_, ia), (_, ib)) in a.outputs(&dag).zip(b.outputs(&coalesced)) {
            assert_eq!(ia.diff_count(ib), 0, "{}", alg.name());
        }
    }
}

#[test]
fn linearized_designs_simulate_bit_exact() {
    // End to end: schedule the *linearized* pipeline and verify the
    // hardware-level simulation still reproduces the original semantics.
    let alg = Algorithm::UnsharpM;
    let dag = alg.build();
    let lin = linearize(&dag).unwrap();
    let spec = MemorySpec::new(
        MemBackend::Asic {
            block_bits: 2 * geom().row_bits(),
        },
        2,
    );
    let out = Compiler::new(geom(), spec)
        .with_style(DesignStyle::Darkroom)
        .compile_dag(&lin.dag)
        .unwrap();
    let input = frame(17);
    let report = simulate(
        &out.plan.dag,
        &out.plan.design,
        std::slice::from_ref(&input),
    )
    .unwrap();
    assert!(report.is_clean());

    // The simulated output equals the ORIGINAL pipeline's golden output
    // (up to the recorded raster shift, interior-exact).
    let orig = execute(&dag, &[input]).unwrap();
    let (orig_id, _) = dag.stages().find(|(_, s)| s.is_output()).unwrap();
    let (_, sim_img) = &report.output_images[0];
    assert_eq!(
        diff_interior_shifted(orig.stage(orig_id), sim_img, lin.shifts[orig_id.index()], 8),
        0
    );
}

#[test]
fn relay_count_matches_extra_consumers() {
    // One relay per consumer beyond the first, per multi-consumer buffer.
    for alg in Algorithm::all() {
        let dag = alg.build();
        let expected: usize = dag
            .buffered_stages()
            .iter()
            .map(|&p| dag.consumers_of(p).len().saturating_sub(1))
            .sum();
        let lin = linearize(&dag).unwrap();
        assert_eq!(lin.relays.len(), expected, "{}: relay count", alg.name());
        assert_eq!(
            lin.dag.num_stages(),
            dag.num_stages() + expected,
            "{}",
            alg.name()
        );
    }
}

#[test]
fn sync_groups_survive_scheduling() {
    // Relays must start exactly with their mirrored siblings in the final
    // schedule (the property that lets them share a read port).
    let dag = Algorithm::DenoiseM.build();
    let lin = linearize(&dag).unwrap();
    let spec = MemorySpec::new(
        MemBackend::Asic {
            block_bits: 2 * geom().row_bits(),
        },
        2,
    );
    let out = Compiler::new(geom(), spec)
        .with_style(DesignStyle::Darkroom)
        .compile_dag(&lin.dag)
        .unwrap();
    for (id, s) in out.plan.dag.stages() {
        if let Some(g) = s.sync_group() {
            for (id2, s2) in out.plan.dag.stages() {
                if s2.sync_group() == Some(g) {
                    assert_eq!(
                        out.plan.schedule.start(id),
                        out.plan.schedule.start(id2),
                        "sync group {g} split"
                    );
                }
            }
        }
    }
}
